"""Compiled (C) backend for the discrete-event simulation engine.

The hot event loop of :func:`repro.simulation.simulator.simulate` —
heap dispatch, array-backed station transitions, per-event statistics
and the service/arrival/routing variate draws — is reimplemented in
``_kernel.c``, compiled on demand with the system C compiler, linked
against NumPy's own ``libnpyrandom`` distribution library, and driven
through :mod:`ctypes`.

Why C + ctypes rather than Numba: the container this project targets
ships only the base scientific stack (no Numba, no Cython) but always
has a C toolchain, and NumPy exports its C distribution functions plus
per-``Generator`` ``bitgen_t`` pointers precisely for this kind of
extension.  The kernel draws every variate through the *same* NumPy C
functions the ``Generator`` methods call, on the *same* per-stream bit
generators :class:`~repro.simulation.rng.RngStreams` creates — so the
bit-stream consumption, and therefore every simulated metric, is
bit-identical to the pure-Python engine (enforced by
``tests/test_golden_sim_metrics.py`` and
``tests/test_compiled_backend.py``).

Backend selection (``REPRO_SIM_BACKEND`` environment variable):

``python`` (default)
    Pure-Python engine, exactly as before.
``compiled``
    Use the C kernel; if it cannot be built/loaded or the run's
    configuration is unsupported, fall back to pure Python with a
    single visible :class:`~repro.exceptions.CompiledFallbackWarning`
    per process and reason.
``auto``
    Use the C kernel when available and applicable, silently fall
    back otherwise.

The support envelope is closed: processor-sharing tiers run natively
(the kernel mirrors :mod:`repro.simulation.ps_station`'s share law),
dynamic speed control yields to the Python controller at every epoch
boundary (queue counts and segmented energy out, clipped speeds back
in, work-preserving rescale applied in C), antithetic seeds pre-draw
their mirrored inverse-transform variates through per-stream Python
refill buffers (``np.log`` is not bitwise libm ``log``, so the coupled
streams cannot be reproduced natively), trace-driven arrivals replay
their timestamp arrays in C, and telemetry queue sampling is buffered
kernel-side and batch-flushed to the sink at epoch/end-of-run
boundaries in the engine's exact event order.  Distribution families
without a native C mapping (e.g. Pareto, whose ``np.power`` SIMD path
is not bit-identical to libm ``pow``) are drawn through a per-event
Python callback instead — slower, still bit-identical — so *any*
accepted configuration produces exact results.  Only tiers with a
discipline the kernel does not know fall back to the interpreter
engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import sysconfig
import tempfile
import warnings
from ctypes import (
    CFUNCTYPE,
    POINTER,
    c_double,
    c_int,
    c_longlong,
    c_void_p,
)
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.distributions.base import ScaledDistribution, ShiftedDistribution
from repro.distributions.deterministic import Deterministic
from repro.distributions.erlang import Erlang
from repro.distributions.exponential import Exponential
from repro.distributions.gamma_dist import Gamma
from repro.distributions.hyperexponential import HyperExponential
from repro.distributions.lognormal import LogNormal
from repro.distributions.uniform_dist import Uniform
from repro.distributions.weibull import Weibull
from repro.exceptions import (
    CompiledFallbackWarning,
    ModelValidationError,
    SimulationError,
    WarmupDiscardWarning,
)
from repro.simulation.rng import AntitheticSeed, RngStreams, fnv1a64
from repro.simulation.rng import _TINY as _RNG_TINY
from repro.simulation.stats import Welford, confidence_halfwidth
from repro.workload.arrivals import PoissonProcess
from repro.workload.traces import TraceArrivalProcess

__all__ = [
    "KernelBuildError",
    "kernel_available",
    "kernel_status",
    "load_kernel",
    "maybe_simulate_compiled",
    "maybe_simulate_fleet_batch",
    "resolve_backend",
    "warm_kernel",
]

_BACKENDS = ("python", "compiled", "auto")

# ---------------------------------------------------------------------------
# build & load
# ---------------------------------------------------------------------------

_KERNEL_SOURCE = Path(__file__).with_name("_kernel.c")

# kind tags (must match _kernel.c)
_SK_PYCALL = 0
_SK_DET = 1
_SK_EXPO = 2
_SK_GAMMA = 3
_SK_UNIFORM = 4
_SK_LOGNORMAL = 5
_SK_WEIBULL = 6
_SK_HYPER = 7
_SK_PYBLOCK = 8
_SK_TRACE = 9
_POST_MUL = 0
_POST_ADD = 1

# Python-refilled variate buffers hand out values in chunks of exactly
# the BlockCursor block size, so one vectorized refill draw consumes a
# stream identically to the Python engine's pregenerated blocks.
_BLOCK_SIZE = 4096

_RC_OK = 0
_RC_NOMEM = 1
_RC_ABORT = 2
_RC_INVARIANT = 3


class KernelBuildError(RuntimeError):
    """The C simulation kernel could not be compiled or loaded."""


_lib: ctypes.CDLL | None = None
_load_error: str | None = None
_warned: set[str] = set()


def _warn_fallback(reason: str) -> None:
    """One visible warning per process and reason, then silence."""
    if reason in _warned:
        return
    _warned.add(reason)
    warnings.warn(
        CompiledFallbackWarning(
            f"REPRO_SIM_BACKEND=compiled requested but falling back to the "
            f"pure-Python engine: {reason} (results are bit-identical)"
        ),
        stacklevel=4,
    )


def resolve_backend(raw: str | None) -> str:
    """Validate and normalize a backend selector string."""
    if raw is None:
        return "python"
    value = raw.strip().lower()
    if value not in _BACKENDS:
        raise ModelValidationError(
            f"REPRO_SIM_BACKEND must be one of {_BACKENDS}, got {raw!r}"
        )
    return value


def _source_digest() -> str:
    payload = _KERNEL_SOURCE.read_bytes()
    tag = f"|numpy={np.__version__}|py={sys.version_info[:2]}|{platform.machine()}"
    return hashlib.sha256(payload + tag.encode()).hexdigest()[:16]


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def _find_compiler() -> str | None:
    for name in ("gcc", "cc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def build_kernel() -> Path:
    """Compile ``_kernel.c`` into the cache (no-op when already built).

    The shared object is keyed by a digest of the source, the NumPy and
    Python versions and the machine architecture, and installed with an
    atomic rename so concurrent processes (e.g. a fleet's workers) can
    race the build safely.
    """
    cache = _cache_dir()
    try:
        cache.mkdir(parents=True, exist_ok=True)
    except OSError:
        cache = Path(tempfile.gettempdir()) / "repro-kernels"
        cache.mkdir(parents=True, exist_ok=True)
    target = cache / f"repro_sim_kernel_{_source_digest()}.so"
    if target.exists():
        return target
    compiler = _find_compiler()
    if compiler is None:
        raise KernelBuildError(
            "no C compiler found (tried gcc, cc, clang); install one or use "
            "REPRO_SIM_BACKEND=python"
        )
    np_dir = Path(np.__file__).parent
    lib_dir = Path(np.random.__file__).parent / "lib"
    if not (lib_dir / "libnpyrandom.a").exists():
        raise KernelBuildError(
            f"NumPy's static distribution library libnpyrandom.a not found under "
            f"{lib_dir}; this NumPy build cannot back the compiled kernel"
        )
    tmp = target.with_suffix(f".tmp.{os.getpid()}.so")
    cmd = [
        compiler,
        "-O2",
        "-fPIC",
        "-shared",
        "-o",
        str(tmp),
        str(_KERNEL_SOURCE),
        "-I",
        sysconfig.get_paths()["include"],
        "-I",
        np.get_include(),
        "-L",
        str(lib_dir),
        "-lnpyrandom",
        "-lm",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise KernelBuildError(
            f"kernel compilation failed ({' '.join(cmd)}):\n{proc.stderr.strip()}"
        )
    os.replace(tmp, target)  # atomic: racing builders converge on one file
    return target


_SERVICE_CB = CFUNCTYPE(c_double, c_int)
_ARRIVAL_CB = CFUNCTYPE(c_double, c_int, POINTER(c_longlong))
# (block_id, buf, cap) -> number of variates written (0 = error/abort)
_REFILL_CB = CFUNCTYPE(c_longlong, c_int, POINTER(c_double), c_longlong)
# (t_boundary) -> -1 error, 0 keep speeds, 1 apply the shared speeds array
_EPOCH_CB = CFUNCTYPE(c_int, c_double)
# (ts[n], vals[n*2M], n) -> 0 ok, -1 error
_SAMPLE_CB = CFUNCTYPE(c_int, POINTER(c_double), POINTER(c_longlong), c_longlong)


class _SamplerDesc(ctypes.Structure):
    _fields_ = [
        ("kind", c_int),
        ("n_branches", c_int),
        ("n_post", c_int),
        ("py_id", c_int),
        ("p1", c_double),
        ("p2", c_double),
        ("bg", c_void_p),
        ("cdf", POINTER(c_double)),
        ("scales", POINTER(c_double)),
        ("post_op", POINTER(c_int)),
        ("post_val", POINTER(c_double)),
    ]


class _StationDesc(ctypes.Structure):
    _fields_ = [("servers", c_int), ("discipline", c_int), ("capacity", c_int)]


class _ArrivalDesc(ctypes.Structure):
    _fields_ = [
        ("kind", c_int),
        ("py_id", c_int),
        ("scale", c_double),
        ("bg", c_void_p),
        ("ts", POINTER(c_double)),  # SK_TRACE: sorted timestamps
        ("n_ts", c_longlong),
        ("cursor", c_longlong),  # SK_TRACE replay state
        ("clock", c_double),
    ]


_DISCIPLINES = {"fcfs": 0, "priority_np": 1, "priority_pr": 2, "loss": 3, "ps": 4}


def load_kernel() -> ctypes.CDLL:
    """Build (if needed) and load the kernel; cached per process."""
    global _lib, _load_error
    if _lib is not None:
        return _lib
    if _load_error is not None:
        raise KernelBuildError(_load_error)
    try:
        path = build_kernel()
        lib = ctypes.CDLL(str(path))
        lib.run_kernel.restype = c_int
        lib.run_kernel.argtypes = [
            c_int,  # K
            c_int,  # M
            c_double,  # horizon
            c_double,  # warmup
            POINTER(_StationDesc),
            POINTER(_SamplerDesc),
            POINTER(_ArrivalDesc),
            c_int,  # has_routing
            POINTER(c_void_p),  # routes
            POINTER(c_int),  # route_len
            POINTER(c_void_p),  # entry_cum
            POINTER(c_void_p),  # trans_cum
            POINTER(c_void_p),  # routing_bg
            POINTER(c_int),  # routing_block (antithetic uniforms)
            _REFILL_CB,
            c_int,  # n_blocks
            c_longlong,  # block_size
            c_int,  # dynamic (epoch-yield protocol active)
            c_longlong,  # n_epochs
            POINTER(c_double),  # epoch_times
            POINTER(c_double),  # speeds (shared decision channel)
            POINTER(c_longlong),  # counts_out (M*K queue counts)
            _EPOCH_CB,
            c_double,  # sample_interval
            _SAMPLE_CB,
            c_int,  # collect_log
            _SERVICE_CB,
            _ARRIVAL_CB,
            POINTER(c_int),  # abort_flag
            POINTER(c_double),  # wait_sum
            POINTER(c_double),  # sojourn_sum
            POINTER(c_longlong),  # visit_count
            POINTER(c_longlong),  # n_blocked
            POINTER(c_longlong),  # offered
            POINTER(c_double),  # busy_total
            POINTER(c_double),  # class_busy
            POINTER(c_longlong),  # out_scalars
            POINTER(c_void_p),  # delay_ptrs
            POINTER(c_longlong),  # delay_counts
            POINTER(c_void_p),  # log_ptrs
            POINTER(c_longlong),  # log_count
        ]
        lib.run_kernel_batch.restype = c_int
        lib.run_kernel_batch.argtypes = [
            c_int,  # n_reps
            c_int,  # K
            c_int,  # M
            c_double,  # horizon
            c_double,  # warmup
            POINTER(_StationDesc),
            POINTER(_SamplerDesc),  # n_reps blocks of M*K
            POINTER(_ArrivalDesc),  # n_reps blocks of K
            POINTER(c_void_p),  # routes
            POINTER(c_int),  # route_len
            _SERVICE_CB,
            _ARRIVAL_CB,
            POINTER(c_int),  # abort_flag
            POINTER(c_double),  # wait_sum
            POINTER(c_double),  # sojourn_sum
            POINTER(c_longlong),  # visit_count
            POINTER(c_longlong),  # n_blocked
            POINTER(c_longlong),  # offered
            POINTER(c_double),  # busy_total
            POINTER(c_double),  # class_busy
            POINTER(c_longlong),  # out_scalars (n_reps blocks of 4)
            POINTER(c_longlong),  # wf_n
            POINTER(c_double),  # wf_mean
            POINTER(c_double),  # wf_m2
            POINTER(c_longlong),  # fail_index
        ]
        lib.k_free.restype = None
        lib.k_free.argtypes = [c_void_p]
    except KernelBuildError as exc:
        _load_error = str(exc)
        raise
    except OSError as exc:  # dlopen failure
        _load_error = f"could not load compiled kernel: {exc}"
        raise KernelBuildError(_load_error) from exc
    _lib = lib
    return lib


def kernel_available() -> bool:
    """True when the C kernel is (or can be) built and loaded."""
    try:
        load_kernel()
        return True
    except KernelBuildError:
        return False


def kernel_status() -> dict[str, Any]:
    """Diagnostic snapshot for ``repro bench``/docs: availability,
    cache path and the build error (if any)."""
    available = kernel_available()
    return {
        "available": available,
        "backend_env": os.environ.get("REPRO_SIM_BACKEND", "python"),
        "source": str(_KERNEL_SOURCE),
        "cache_dir": str(_cache_dir()),
        "error": _load_error,
    }


def warm_kernel() -> bool:
    """Pre-build/load the kernel (e.g. from a worker initializer or
    before timing); returns availability without raising."""
    return kernel_available()


# ---------------------------------------------------------------------------
# configuration support envelope
# ---------------------------------------------------------------------------


def _unsupported_reason(cluster, seed, epoch_controller) -> str | None:
    """Why this configuration cannot run on the C kernel (``None`` =
    supported).

    Epoch controllers, antithetic seeds, PS tiers and telemetry queue
    sampling are all inside the envelope now; the remaining exclusion
    is a tier discipline the kernel has no state machine for.  The
    ``seed``/``epoch_controller`` parameters stay in the signature so
    the decision matrix is explicit at the call site (and future
    exclusions slot in without touching callers).
    """
    del seed, epoch_controller  # fully supported; kept for the call-site contract
    for tier in cluster.tiers:
        if tier.discipline not in _DISCIPLINES:
            return (
                f"tier discipline {tier.discipline!r} is not modeled by the "
                "compiled kernel"
            )
    return None


def _annotate_backend(resolved: str, requested: str, fallback: str | None = None) -> None:
    """Record the resolved simulation backend (and any fallback reason)
    in the telemetry run context, so the manifest / run store / dashboard
    can attribute perf differences across runs.  No-op when telemetry is
    disabled."""
    tel = obs.TELEMETRY
    if not tel.enabled:
        return
    context: dict[str, str] = {
        "sim_backend": resolved,
        "sim_backend_requested": requested,
    }
    if fallback is not None:
        context["sim_backend_fallback"] = fallback
    tel.annotate(**context)


# ---------------------------------------------------------------------------
# descriptor building
# ---------------------------------------------------------------------------


def _bitgen_ptr(rng: np.random.Generator) -> int:
    return ctypes.cast(rng.bit_generator.ctypes.bit_generator, c_void_p).value


def _sampler_descriptor(dist, rng, keep: list, py_samplers: list) -> _SamplerDesc:
    """Map one (distribution, stream) pair to a kernel descriptor.

    ``Scaled``/``Shifted`` wrappers unwrap into a post-op chain
    (outermost first; the kernel applies them innermost first, matching
    the Python nesting).  Families with a native NumPy C counterpart
    draw inside the kernel; anything else falls back to a per-draw
    Python callback that performs the engine's exact scalar draw.
    """
    post_ops: list[int] = []
    post_vals: list[float] = []
    base = dist
    while isinstance(base, (ScaledDistribution, ShiftedDistribution)):
        if isinstance(base, ScaledDistribution):
            post_ops.append(_POST_MUL)
            post_vals.append(float(base.factor))
        else:
            post_ops.append(_POST_ADD)
            post_vals.append(float(base.offset))
        base = base.base

    desc = _SamplerDesc()
    desc.n_post = len(post_ops)
    if post_ops:
        op_arr = np.asarray(post_ops, dtype=np.int32)
        val_arr = np.asarray(post_vals, dtype=np.float64)
        keep.extend((op_arr, val_arr))
        desc.post_op = op_arr.ctypes.data_as(POINTER(c_int))
        desc.post_val = val_arr.ctypes.data_as(POINTER(c_double))

    bt = type(base)
    if bt is Deterministic:
        desc.kind = _SK_DET
        desc.p1 = float(base.value)
        return desc
    if bt is Exponential:
        desc.kind = _SK_EXPO
        desc.p1 = 1.0 / base.rate
    elif bt in (Erlang, Gamma):
        desc.kind = _SK_GAMMA
        desc.p1 = float(base.k)
        desc.p2 = 1.0 / base.rate
    elif bt is Uniform:
        desc.kind = _SK_UNIFORM
        desc.p1 = float(base.low)
        # Generator.uniform computes the range once as high - low.
        desc.p2 = float(base.high) - float(base.low)
    elif bt is LogNormal:
        desc.kind = _SK_LOGNORMAL
        desc.p1 = float(base.mu)
        desc.p2 = float(base.sigma)
    elif bt is Weibull:
        desc.kind = _SK_WEIBULL
        desc.p1 = float(base.lam)
        desc.p2 = float(base.k)
    elif bt is HyperExponential:
        desc.kind = _SK_HYPER
        cdf = np.ascontiguousarray(base._cdf, dtype=np.float64)
        scales = np.ascontiguousarray(base._scales, dtype=np.float64)
        keep.extend((cdf, scales))
        desc.n_branches = cdf.size
        desc.cdf = cdf.ctypes.data_as(POINTER(c_double))
        desc.scales = scales.ctypes.data_as(POINTER(c_double))
    else:
        # Per-draw Python callback: the engine's own scalar draw (the
        # block-sampling contract makes it equal to the BlockCursor
        # path for block-safe families; non-safe families already use
        # this exact call).
        desc.kind = _SK_PYCALL
        desc.n_post = 0  # wrappers sample through dist directly
        desc.py_id = len(py_samplers)

        def _draw(sample=dist.sample, rng=rng) -> float:
            return float(sample(rng))

        py_samplers.append(_draw)
        return desc
    desc.bg = _bitgen_ptr(rng)
    return desc


# ---------------------------------------------------------------------------
# the compiled run
# ---------------------------------------------------------------------------


def maybe_simulate_compiled(
    backend: str,
    cluster,
    workload,
    horizon: float,
    warmup_fraction: float,
    seed,
    arrival_processes,
    collect_delay_samples: bool,
    collect_job_log: bool,
    routing,
    epoch_times,
    epoch_controller,
):
    """Run the replication on the C kernel, or return ``None`` to make
    :func:`~repro.simulation.simulator.simulate` fall back to the
    Python engine.  ``backend`` is ``"compiled"`` or ``"auto"``
    (validated by the caller); only ``"compiled"`` warns on fallback.
    """
    reason = _unsupported_reason(cluster, seed, epoch_controller)
    if reason is not None:
        if backend == "compiled":
            _warn_fallback(reason)
        _annotate_backend("python", backend, fallback=reason)
        return None
    try:
        lib = load_kernel()
    except KernelBuildError as exc:
        if backend == "compiled":
            _warn_fallback(str(exc))
        _annotate_backend("python", backend, fallback=str(exc))
        return None
    _annotate_backend("compiled", backend)
    return _simulate_compiled(
        lib,
        cluster,
        workload,
        horizon,
        warmup_fraction,
        seed,
        arrival_processes,
        collect_delay_samples,
        collect_job_log,
        routing,
        epoch_times,
        epoch_controller,
    )


def _simulate_compiled(
    lib,
    cluster,
    workload,
    horizon,
    warmup_fraction,
    seed,
    arrival_processes,
    collect_delay_samples,
    collect_job_log,
    routing,
    epoch_times,
    epoch_controller,
):
    # Import here: simulator imports this module lazily, so a top-level
    # import would be circular.
    from repro.simulation.simulator import (
        SimulationResult,
        _build_routes,
        _build_routing_tables,
        _make_sampler,
    )

    k_classes = workload.num_classes
    m_stations = cluster.num_tiers
    warmup = warmup_fraction * horizon
    antithetic = isinstance(seed, AntitheticSeed)
    dynamic = epoch_controller is not None
    keep: list[Any] = []  # keep-alive for every array the kernel reads
    py_samplers: list[Any] = []
    abort = (c_int * 1)(0)
    cb_error: list[BaseException] = []

    # Python-refilled variate buffers.  Antithetic (coupled) streams go
    # through ``np.log``/``np.minimum``, which are not bitwise libm, so
    # the kernel cannot draw them natively; instead each stream gets a
    # block id whose fill(n) closure pre-draws n variates with the
    # engine's own sampling code.  Streams are consumer-private, so
    # drawing ahead yields the exact sequence the engine would see.
    block_fills: list[Any] = []

    def _new_block(fill) -> int:
        block_fills.append(fill)
        return len(block_fills) - 1

    def _refill(block_id: int, buf, cap: int) -> int:
        try:
            arr = np.ascontiguousarray(block_fills[block_id](int(cap)), dtype=np.float64)
            ctypes.memmove(buf, arr.ctypes.data, arr.size * 8)
            return arr.size
        except BaseException as exc:  # propagate through the abort flag
            cb_error.append(exc)
            abort[0] = 1
            return 0

    def _pump_fill(dist, rng):
        """fill(n) for one service stream: block-safe families draw one
        vectorized block (n == the BlockCursor block size, so the draw
        equals the engine's pregenerated chunk exactly); everything else
        pumps the engine's own scalar sampler n times.

        HyperExponential — the canonical high-variability demand, so
        the hot unsafe family — is vectorized with interleaved
        uniforms: the scalar sampler consumes (u_select, u_expo) per
        draw, so one ``random(2n)`` batch sliced even/odd reproduces
        the exact stream consumption and values (``random(2n)``
        advances the bit generator identically to 2n scalar calls,
        and ``searchsorted(side="right")`` matches ``bisect_right``).
        """
        if dist.block_sampling_safe:

            def fill(n, sample=dist.sample, rng=rng):
                return sample(rng, n)

        elif isinstance(dist, HyperExponential):
            cdf = np.asarray(dist._cdf, dtype=np.float64)
            hyper_scales = np.asarray(dist._scales, dtype=np.float64)

            def fill(n, cdf=cdf, hyper_scales=hyper_scales, rng=rng):
                u = rng.random(2 * n)
                idx = np.searchsorted(cdf, u[0::2], side="right")
                w = 1.0 - u[1::2]
                return hyper_scales[idx] * -np.log(np.maximum(w, _RNG_TINY))

        else:
            scalar = _make_sampler(dist, rng)

            def fill(n, scalar=scalar):
                return [scalar() for _ in range(n)]

        return fill

    with obs.span("sim.setup", classes=k_classes, stations=m_stations, horizon=horizon):
        streams = RngStreams(seed)
        keep.append(streams)

        routing_block = None
        if routing is None:
            routes = _build_routes(cluster)
            has_routing = 0
            route_arrays = [np.asarray(r, dtype=np.int32) for r in routes]
            keep.extend(route_arrays)
            routes_v = (c_void_p * k_classes)(
                *[r.ctypes.data_as(c_void_p).value for r in route_arrays]
            )
            route_len = (c_int * k_classes)(*[r.size for r in route_arrays])
            entry_v = trans_v = routing_bg = None
        else:
            tables = _build_routing_tables(cluster, routing)
            has_routing = 1
            routes_v = route_len = None
            entry_arrays = [
                np.ascontiguousarray(tables[k][0], dtype=np.float64)
                for k in range(k_classes)
            ]
            trans_arrays = [
                np.ascontiguousarray(np.stack(tables[k][1]), dtype=np.float64)
                for k in range(k_classes)
            ]
            keep.extend(entry_arrays)
            keep.extend(trans_arrays)
            entry_v = (c_void_p * k_classes)(
                *[a.ctypes.data_as(c_void_p).value for a in entry_arrays]
            )
            trans_v = (c_void_p * k_classes)(
                *[a.ctypes.data_as(c_void_p).value for a in trans_arrays]
            )
            if antithetic:
                # Mirrored uniforms (min(1-u, 1^-) per draw) cannot come
                # off the raw bit generator; pre-draw them through the
                # coupled generators instead (Generator.random is the
                # engine's _draw_uniform block draw).
                routing_bg = None
                block_ids = []
                for k in range(k_classes):
                    rng = streams.stream(f"routing/{k}")

                    def _uniform_fill(n, rng=rng):
                        return rng.random(n)

                    block_ids.append(_new_block(_uniform_fill))
                routing_block = (c_int * k_classes)(*block_ids)
            else:
                routing_bg = (c_void_p * k_classes)(
                    *[_bitgen_ptr(streams.stream(f"routing/{k}")) for k in range(k_classes)]
                )

        if arrival_processes is None:
            arrivals = [PoissonProcess(c.arrival_rate) for c in workload.classes]
        else:
            if len(arrival_processes) != k_classes:
                raise ModelValidationError(
                    f"expected {k_classes} arrival processes, got {len(arrival_processes)}"
                )
            arrivals = [p.fresh() for p in arrival_processes]
        arrival_desc = (_ArrivalDesc * k_classes)()
        arrival_pull: list[Any] = [None] * k_classes
        for k, proc in enumerate(arrivals):
            rng = streams.stream(f"arrivals/{k}")
            if type(proc) is PoissonProcess and not antithetic:
                arrival_desc[k].kind = _SK_EXPO
                arrival_desc[k].scale = 1.0 / proc.rate
                arrival_desc[k].bg = _bitgen_ptr(rng)
            elif type(proc) is PoissonProcess:
                # Coupled exponential gaps: same vectorized draw the
                # engine's BlockCursor makes, one block per refill.
                arrival_desc[k].kind = _SK_PYBLOCK

                def _gap_fill(n, rng=rng, scale=1.0 / proc.rate):
                    return rng.exponential(scale, n)

                arrival_desc[k].py_id = _new_block(_gap_fill)
            elif type(proc) is TraceArrivalProcess:
                # RNG-free timestamp replay runs natively in C.
                ts = np.ascontiguousarray(proc.timestamps, dtype=np.float64)
                keep.append(ts)
                arrival_desc[k].kind = _SK_TRACE
                arrival_desc[k].ts = ts.ctypes.data_as(POINTER(c_double))
                arrival_desc[k].n_ts = ts.size
                arrival_desc[k].cursor = 0
                arrival_desc[k].clock = 0.0
            else:
                arrival_desc[k].kind = _SK_PYCALL

                def _pull(proc=proc, rng=rng):
                    return proc.next_arrival(rng)

                arrival_pull[k] = _pull

        station_desc = (_StationDesc * m_stations)()
        sampler_desc = (_SamplerDesc * (m_stations * k_classes))()
        for i, tier in enumerate(cluster.tiers):
            if tier.discipline == "ps" and tier.capacity is not None:
                # The Python engine rejects this during station setup —
                # after backend dispatch — so the compiled path must
                # raise the identical error itself.
                raise ModelValidationError(
                    f"tier {tier.name!r}: finite buffers are not supported for PS tiers"
                )
            station_desc[i].servers = tier.servers
            station_desc[i].discipline = _DISCIPLINES[tier.discipline]
            station_desc[i].capacity = -1 if tier.capacity is None else tier.capacity
            for k in range(k_classes):
                rng = streams.stream(f"service/{i}/{k}")
                # Under dynamic speed control the sampler yields the
                # *demand* (work at speed 1) and the kernel divides by
                # the current speed at pull time, mirroring
                # _make_dynamic_sampler's base()/cell[0].
                if dynamic:
                    dist = tier.demands[k]
                else:
                    dist = tier.demands[k].scaled(1.0 / tier.speed)
                keep.append(dist)
                if antithetic:
                    desc = _SamplerDesc()
                    desc.kind = _SK_PYBLOCK
                    desc.py_id = _new_block(_pump_fill(dist, rng))
                    sampler_desc[i * k_classes + k] = desc
                else:
                    sampler_desc[i * k_classes + k] = _sampler_descriptor(
                        dist, rng, keep, py_samplers
                    )

        # outputs
        wait_np = np.zeros((k_classes, m_stations))
        sojourn_np = np.zeros((k_classes, m_stations))
        visit_np = np.zeros((k_classes, m_stations), dtype=np.int64)
        blocked_np = np.zeros((k_classes, m_stations), dtype=np.int64)
        offered_np = np.zeros((k_classes, m_stations), dtype=np.int64)
        busy_np = np.zeros(m_stations)
        class_busy_np = np.zeros((m_stations, k_classes))
        out_scalars = np.zeros(4, dtype=np.int64)
        delay_ptrs = (c_void_p * k_classes)()
        delay_counts = (c_longlong * k_classes)()
        log_ptrs = (c_void_p * 4)()
        log_count = c_longlong(0)

        # --- epoch-boundary yield protocol (dynamic speed control) ---
        # The kernel pauses at each scheduled boundary, publishes the
        # per-tier queue counts (counts_np) and closed busy totals
        # (busy_np / class_busy_np), and calls _epoch_decide; a positive
        # return applies the clipped speeds written into speeds_arr via
        # the work-preserving remaining-time rescale, in C.
        epoch_sched = None
        counts_np = None
        speeds_arr = None
        epoch_cb = _EPOCH_CB()  # NULL function pointer when static
        n_epochs = 0
        if dynamic:
            epoch_sched = np.ascontiguousarray(epoch_times, dtype=np.float64)
            n_epochs = int(epoch_sched.size)
            counts_np = np.zeros((m_stations, k_classes), dtype=np.int64)
            cur_speeds = [float(tier.speed) for tier in cluster.tiers]
            speeds_arr = np.array(cur_speeds)
            tier_power = [(t.spec.power.kappa, t.spec.power.alpha) for t in cluster.tiers]
            speed_bounds = [(t.spec.min_speed, t.spec.max_speed) for t in cluster.tiers]
            busy_mark = [0.0] * m_stations
            class_busy_mark = [[0.0] * k_classes for _ in range(m_stations)]
            epoch_trace: list[dict[str, Any]] = []
            energy = {"dyn": 0.0}
            per_class_dyn_energy = np.zeros(k_classes)

            def _accrue_segments(tb: float) -> None:
                """Bill busy time closed at ``tb`` (already flushed into
                busy_np/class_busy_np by the kernel) at each segment's
                current speed — the engine's exact accumulation order
                and expression shapes."""
                for i in range(m_stations):
                    kappa, alpha = tier_power[i]
                    p_dyn = kappa * cur_speeds[i] ** alpha
                    bt = float(busy_np[i])
                    delta = bt - busy_mark[i]
                    if delta > 0.0:
                        energy["dyn"] += p_dyn * delta
                        busy_mark[i] = bt
                    mark = class_busy_mark[i]
                    for k in range(k_classes):
                        cbk = float(class_busy_np[i, k])
                        dk = cbk - mark[k]
                        if dk > 0.0:
                            per_class_dyn_energy[k] += p_dyn * dk
                            mark[k] = cbk

            def _epoch_decide(tb: float) -> int:
                try:
                    _accrue_segments(tb)
                    # One counts array per epoch, shared between the
                    # controller and the trace row (the engine passes
                    # the trace's own array to the controller).
                    counts = counts_np.copy()
                    speeds_now = np.array(cur_speeds)
                    new_speeds = epoch_controller(tb, counts, speeds_now.copy())
                    apply = 0
                    if new_speeds is not None:
                        new_arr = np.asarray(new_speeds, dtype=float)
                        if new_arr.shape != (m_stations,):
                            raise ModelValidationError(
                                f"epoch controller must return {m_stations} speeds, "
                                f"got shape {new_arr.shape}"
                            )
                        for i in range(m_stations):
                            lo, hi = speed_bounds[i]
                            s_new = min(max(float(new_arr[i]), lo), hi)
                            s_old = cur_speeds[i]
                            if s_new != s_old:
                                ratio = s_old / s_new
                                if ratio <= 0.0:
                                    raise SimulationError(
                                        f"speed rescale ratio must be positive, got {ratio}"
                                    )
                                cur_speeds[i] = s_new
                                speeds_now[i] = s_new
                                apply = 1
                            speeds_arr[i] = s_new
                    epoch_trace.append(
                        {
                            "t": tb,
                            "queues": counts,
                            "speeds": speeds_now,
                            "dynamic_energy": energy["dyn"],
                        }
                    )
                    obs.event(
                        "sim.epoch",
                        epoch=len(epoch_trace) - 1,
                        t=tb,
                        queues=counts,
                        speeds=speeds_now,
                        dynamic_energy=energy["dyn"],
                    )
                    return apply
                except BaseException as exc:
                    cb_error.append(exc)
                    abort[0] = 1
                    return -1

            epoch_cb = _EPOCH_CB(_epoch_decide)

        # --- buffered queue-length sampling -------------------------
        # The kernel records (t, populations, busy) rows and batch-
        # flushes them here at epoch boundaries and at end of run; the
        # replay preserves the engine's exact gauge/event emission
        # order, so telemetry output is byte-identical.
        tel = obs.TELEMETRY
        sample_interval = (
            tel.queue_sample_interval if (tel.enabled and tel.sample_queues) else 0.0
        )
        sample_cb = _SAMPLE_CB()  # NULL function pointer when sampling is off
        if sample_interval > 0.0:
            gauge = tel.metrics.gauge
            tracer_event = tel.tracer.event

            def _flush_samples(ts_ptr, vals_ptr, n_rows: int) -> int:
                try:
                    for r in range(int(n_rows)):
                        base = r * 2 * m_stations
                        pops = [int(vals_ptr[base + i]) for i in range(m_stations)]
                        busy = [
                            int(vals_ptr[base + m_stations + i]) for i in range(m_stations)
                        ]
                        for i in range(m_stations):
                            gauge(f"sim.tier.{i}.population").set(pops[i])
                            gauge(f"sim.tier.{i}.busy_servers").set(busy[i])
                        tracer_event(
                            "sim.queue_sample",
                            t=float(ts_ptr[r]),
                            population=pops,
                            busy=busy,
                        )
                    return 0
                except BaseException as exc:
                    cb_error.append(exc)
                    abort[0] = 1
                    return -1

            sample_cb = _SAMPLE_CB(_flush_samples)

        refill_cb = _REFILL_CB(_refill) if block_fills else _REFILL_CB()

        def _service_cb(sampler_id: int) -> float:
            try:
                return py_samplers[sampler_id]()
            except BaseException as exc:  # propagate through the abort flag
                cb_error.append(exc)
                abort[0] = 1
                return 0.0

        def _arrival_cb(cls: int, batch_out) -> float:
            try:
                gap, batch = arrival_pull[cls]()
                batch_out[0] = int(batch)
                return float(gap)
            except BaseException as exc:
                cb_error.append(exc)
                abort[0] = 1
                return 0.0

        service_cb = _SERVICE_CB(_service_cb)
        arrival_cb = _ARRIVAL_CB(_arrival_cb)

    def _as_ll(a):
        return a.ctypes.data_as(POINTER(c_longlong))

    def _as_d(a):
        return a.ctypes.data_as(POINTER(c_double))

    with obs.span("sim.event_loop", horizon=horizon, backend="compiled"):
        rc = lib.run_kernel(
            k_classes,
            m_stations,
            float(horizon),
            float(warmup),
            station_desc,
            sampler_desc,
            arrival_desc,
            has_routing,
            routes_v,
            route_len,
            entry_v,
            trans_v,
            routing_bg,
            routing_block,
            refill_cb,
            len(block_fills),
            _BLOCK_SIZE,
            1 if dynamic else 0,
            n_epochs,
            None if epoch_sched is None else epoch_sched.ctypes.data_as(POINTER(c_double)),
            None if speeds_arr is None else speeds_arr.ctypes.data_as(POINTER(c_double)),
            None if counts_np is None else counts_np.ctypes.data_as(POINTER(c_longlong)),
            epoch_cb,
            float(sample_interval),
            sample_cb,
            1 if collect_job_log else 0,
            service_cb,
            arrival_cb,
            abort,
            _as_d(wait_np),
            _as_d(sojourn_np),
            _as_ll(visit_np),
            _as_ll(blocked_np),
            _as_ll(offered_np),
            _as_d(busy_np),
            _as_d(class_busy_np),
            _as_ll(out_scalars),
            delay_ptrs,
            delay_counts,
            log_ptrs,
            ctypes.byref(log_count),
        )
    del keep  # the kernel has returned; arrays may be collected now
    if rc == _RC_ABORT:
        if cb_error:
            raise cb_error[0]
        raise SimulationError("compiled kernel aborted without a recorded error")
    if rc == _RC_NOMEM:
        raise MemoryError("compiled simulation kernel ran out of memory")
    if rc == _RC_INVARIANT:
        raise SimulationError("completion with no busy server (compiled kernel)")

    with obs.span("sim.finalize"):
        # Copy the kernel-owned growable buffers, then release them.
        delay_buf: list[np.ndarray] = []
        for k in range(k_classes):
            n = delay_counts[k]
            if n:
                src = ctypes.cast(delay_ptrs[k], POINTER(c_double))
                delay_buf.append(np.ctypeslib.as_array(src, shape=(int(n),)).copy())
            else:
                delay_buf.append(np.empty(0))
            if delay_ptrs[k]:
                lib.k_free(delay_ptrs[k])
        job_log = None
        if collect_job_log:
            n = int(log_count.value)
            job_log = np.empty(
                n,
                dtype=[
                    ("jid", np.int64),
                    ("cls", np.int32),
                    ("arrival", float),
                    ("exit", float),
                ],
            )
            if n:
                job_log["jid"] = np.ctypeslib.as_array(
                    ctypes.cast(log_ptrs[0], POINTER(c_longlong)), shape=(n,)
                )
                job_log["cls"] = np.ctypeslib.as_array(
                    ctypes.cast(log_ptrs[1], POINTER(c_int)), shape=(n,)
                )
                job_log["arrival"] = np.ctypeslib.as_array(
                    ctypes.cast(log_ptrs[2], POINTER(c_double)), shape=(n,)
                )
                job_log["exit"] = np.ctypeslib.as_array(
                    ctypes.cast(log_ptrs[3], POINTER(c_double)), shape=(n,)
                )
        for p in log_ptrs:
            if p:
                lib.k_free(p)

        # Welford flush: same scalar recurrence over the same values in
        # the same order as the Python engine (.tolist() hands the
        # accumulator the exact Python-float sequence it sees there).
        e2e = [Welford() for _ in range(k_classes)]
        for k in range(k_classes):
            e2e[k].add_batch(delay_buf[k].tolist())

        jid = int(out_scalars[0])
        n_events = int(out_scalars[1])
        n_warmup_discarded = int(out_scalars[2])

        window = horizon - warmup
        busy_list = [float(b) for b in busy_np]
        class_busy_list = [[float(x) for x in row] for row in class_busy_np]
        utilizations = np.array(
            [
                busy_list[i] / (tier.servers * window)
                for i, tier in enumerate(cluster.tiers)
            ]
        )

        if dynamic:
            # The kernel wrote horizon-closed busy totals into
            # busy_np/class_busy_np; billing them closes the last
            # constant-speed segment exactly like the engine's final
            # _accrue_segments(horizon).
            _accrue_segments(horizon)
            dynamic_power = energy["dyn"] / window
            per_class_dyn_energy_rate = per_class_dyn_energy / window
        else:
            dynamic_power = 0.0
            per_class_dyn_energy_rate = np.zeros(k_classes)
            for i, tier in enumerate(cluster.tiers):
                p_dyn = tier.spec.power.kappa * tier.speed**tier.spec.power.alpha
                dynamic_power += p_dyn * busy_list[i] / window
                for k in range(k_classes):
                    per_class_dyn_energy_rate[k] += p_dyn * class_busy_list[i][k] / window
        idle_power = float(sum(t.servers * t.spec.power.idle for t in cluster.tiers))
        average_power = idle_power + dynamic_power

        n_completed = np.array([w.n for w in e2e], dtype=np.int64)
        delays = np.array([w.mean for w in e2e])
        stds = np.array([w.std for w in e2e])
        cis = np.array([confidence_halfwidth(w.std, w.n) for w in e2e])

        throughput = n_completed / window
        with np.errstate(divide="ignore", invalid="ignore"):
            per_class_dyn = np.where(
                throughput > 0,
                per_class_dyn_energy_rate / np.maximum(throughput, 1e-300),
                np.nan,
            )
        total_throughput = float(throughput.sum())
        energy_per_request = (
            average_power / total_throughput if total_throughput > 0 else float("nan")
        )

        station_completions = visit_np.copy()
        with np.errstate(divide="ignore", invalid="ignore"):
            station_waits = np.where(
                visit_np > 0, wait_np / np.maximum(visit_np, 1), np.nan
            )
            station_sojourns = np.where(
                visit_np > 0, sojourn_np / np.maximum(visit_np, 1), np.nan
            )

    n_counted_total = int(n_completed.sum())
    n_finished_total = n_counted_total + n_warmup_discarded
    if n_finished_total > 0 and n_warmup_discarded > 0.5 * n_finished_total:
        discard_fraction = n_warmup_discarded / n_finished_total
        warnings.warn(
            WarmupDiscardWarning(
                f"warmup window ({warmup:g} of horizon {horizon:g}) discarded "
                f"{n_warmup_discarded} of {n_finished_total} completed jobs "
                f"({discard_fraction:.0%}); delay statistics rest on only "
                f"{n_counted_total} jobs — lengthen the horizon or shrink "
                f"warmup_fraction"
            ),
            stacklevel=3,
        )
        obs.event(
            "sim.warmup_discard",
            warmup=warmup,
            horizon=horizon,
            n_discarded=n_warmup_discarded,
            n_counted=n_counted_total,
            discard_fraction=discard_fraction,
        )
    obs.counter("sim.events").add(n_events)
    obs.counter("sim.jobs_created").add(jid)
    obs.counter("sim.jobs_counted").add(n_counted_total)

    meta: dict[str, Any] = {
        "n_jobs_created": jid,
        "n_events": n_events,
        "n_warmup_discarded": n_warmup_discarded,
        "station_completions": station_completions,
        "n_blocked": blocked_np.copy(),
        "n_offered": offered_np.copy(),
    }
    if dynamic:
        meta["epoch_trace"] = epoch_trace
        meta["final_speeds"] = np.array(cur_speeds)
        meta["dynamic_energy"] = float(energy["dyn"])

    return SimulationResult(
        class_names=tuple(workload.names),
        n_completed=n_completed,
        delays=delays,
        delay_std=stds,
        delay_ci=cis,
        station_waits=station_waits,
        station_sojourns=station_sojourns,
        utilizations=utilizations,
        average_power=average_power,
        energy_per_request=energy_per_request,
        per_class_dynamic_energy=per_class_dyn,
        horizon=horizon,
        warmup=warmup,
        meta=meta,
        delay_samples=(delay_buf if collect_delay_samples else None),
        job_log=job_log,
    )


# ---------------------------------------------------------------------------
# batched fleet dispatch
# ---------------------------------------------------------------------------


def maybe_simulate_fleet_batch(
    backend: str,
    cluster,
    workload,
    horizon: float,
    warmup_fraction: float,
    seeds: list,
):
    """Run a batch of static replications in one kernel call, or return
    ``None`` so the fleet runner falls back to unit-at-a-time dispatch
    (which itself picks the best available engine and emits the usual
    fallback warnings).

    The batch path covers exactly the fleet configuration space: fixed
    routes, default Poisson arrivals, no epoch controller, no
    antithetic seeds, no per-job delay samples or job logs.  Telemetry
    queue sampling needs the unit path (the batch kernel skips the
    sampling tap), so it returns ``None`` there too.

    Returns ``(rows, failures)``: ``rows[b]`` is the metric dict for
    ``seeds[b]`` (the fleet row minus the unit/scenario/replication/
    wall_s bookkeeping columns) or ``None`` if that replication failed;
    ``failures`` lists ``(index, "ExcType: message")`` pairs formatted
    exactly like the fleet's per-unit failure records.
    """
    if _unsupported_reason(cluster, None, None) is not None:
        return None
    if any(isinstance(s, AntitheticSeed) for s in seeds):
        return None
    tel = obs.TELEMETRY
    if tel.enabled and tel.sample_queues and tel.queue_sample_interval > 0.0:
        return None
    try:
        lib = load_kernel()
    except KernelBuildError:
        return None
    _annotate_backend("compiled", backend)
    return _simulate_fleet_batch(lib, cluster, workload, horizon, warmup_fraction, seeds)


def _simulate_fleet_batch(lib, cluster, workload, horizon, warmup_fraction, seeds):
    from repro.simulation.simulator import (
        _build_routes,
        _validate_basic_inputs,
        _validate_stability,
    )

    # The same validation gate simulate() applies per unit, with the
    # same messages — deterministic in the scenario, so raising once
    # for the whole batch is observably identical to raising per unit
    # (the fleet runner fans the message out to every unit).
    _validate_basic_inputs(cluster, workload, horizon, warmup_fraction)
    _validate_stability(cluster, workload)

    k_classes = workload.num_classes
    m_stations = cluster.num_tiers
    warmup = warmup_fraction * horizon
    n_reps = len(seeds)
    keep: list[Any] = []  # keep-alive for every object the kernel reads
    py_samplers: list[Any] = []
    abort = (c_int * 1)(0)
    cb_error: list[BaseException] = []

    def _as_ll(a):
        return a.ctypes.data_as(POINTER(c_longlong))

    def _as_d(a):
        return a.ctypes.data_as(POINTER(c_double))

    with obs.span(
        "sim.batch_setup", classes=k_classes, stations=m_stations, reps=n_reps
    ):
        routes = _build_routes(cluster)
        route_arrays = [np.asarray(r, dtype=np.int32) for r in routes]
        keep.extend(route_arrays)
        routes_v = (c_void_p * k_classes)(
            *[r.ctypes.data_as(c_void_p).value for r in route_arrays]
        )
        route_len = (c_int * k_classes)(*[r.size for r in route_arrays])

        # Station geometry and the speed-scaled demand distributions are
        # shared by every replication; only the per-seed bit generators
        # differ, so the descriptor template work happens once.
        station_desc = (_StationDesc * m_stations)()
        dists: list[list[Any]] = []
        for i, tier in enumerate(cluster.tiers):
            if tier.discipline == "ps" and tier.capacity is not None:
                raise ModelValidationError(
                    f"tier {tier.name!r}: finite buffers are not supported for PS tiers"
                )
            station_desc[i].servers = tier.servers
            station_desc[i].discipline = _DISCIPLINES[tier.discipline]
            station_desc[i].capacity = -1 if tier.capacity is None else tier.capacity
            row = [tier.demands[k].scaled(1.0 / tier.speed) for k in range(k_classes)]
            dists.append(row)
            keep.extend(row)

        arrival_procs = [PoissonProcess(c.arrival_rate) for c in workload.classes]
        arrival_scales = [1.0 / p.rate for p in arrival_procs]

        # Per-stream bit generators, derived exactly as
        # RngStreams.stream does — SeedSequence(entropy, spawn_key +
        # (fnv1a64(name),)) feeding PCG64 — but without the Generator
        # wrapper or per-call hashing: the name digests are fixed
        # across the batch, and the kernel only needs the bitgen_t
        # pointer. Descriptor *templates* (distribution parameters,
        # post-op chains) are built once per (station, class) and
        # struct-copied per replication with only the stream pointer
        # patched; families needing the per-draw Python callback get a
        # fresh closure per replication over that replication's stream.
        arrival_hashes = [fnv1a64(f"arrivals/{k}") for k in range(k_classes)]
        service_hashes = [
            [fnv1a64(f"service/{i}/{k}") for k in range(k_classes)]
            for i in range(m_stations)
        ]
        template_rng = np.random.Generator(np.random.PCG64(0))
        templates: list[list[_SamplerDesc | None]] = []
        for i in range(m_stations):
            row_t: list[_SamplerDesc | None] = []
            for k in range(k_classes):
                t = _sampler_descriptor(dists[i][k], template_rng, keep, [])
                row_t.append(None if t.kind == _SK_PYCALL else t)
            templates.append(row_t)

        def _stream_bg(entropy, spawn_key: tuple, name_hash: int):
            child = np.random.SeedSequence(
                entropy=entropy, spawn_key=spawn_key + (name_hash,)
            )
            bg = np.random.PCG64(child)
            keep.append(bg)
            return bg, ctypes.cast(bg.ctypes.bit_generator, c_void_p).value

        sampler_desc = (_SamplerDesc * (n_reps * m_stations * k_classes))()
        arrival_desc = (_ArrivalDesc * (n_reps * k_classes))()
        for b, seed in enumerate(seeds):
            if isinstance(seed, np.random.SeedSequence):
                entropy = seed.entropy
                spawn_key = tuple(seed.spawn_key)
            else:
                if not isinstance(seed, (int, np.integer)) or seed < 0:
                    raise ModelValidationError(
                        f"seed must be a non-negative integer, got {seed}"
                    )
                entropy = int(seed)
                spawn_key = ()
            base_a = b * k_classes
            for k in range(k_classes):
                _bg, ptr = _stream_bg(entropy, spawn_key, arrival_hashes[k])
                arrival_desc[base_a + k].kind = _SK_EXPO
                arrival_desc[base_a + k].scale = arrival_scales[k]
                arrival_desc[base_a + k].bg = ptr
            base_s = b * m_stations * k_classes
            for i in range(m_stations):
                for k in range(k_classes):
                    bg, ptr = _stream_bg(entropy, spawn_key, service_hashes[i][k])
                    idx = base_s + i * k_classes + k
                    template = templates[i][k]
                    if template is None:
                        sampler_desc[idx] = _sampler_descriptor(
                            dists[i][k], np.random.Generator(bg), keep, py_samplers
                        )
                    else:
                        sampler_desc[idx] = template
                        sampler_desc[idx].bg = ptr

        wait_np = np.zeros((n_reps, k_classes, m_stations))
        sojourn_np = np.zeros((n_reps, k_classes, m_stations))
        visit_np = np.zeros((n_reps, k_classes, m_stations), dtype=np.int64)
        blocked_np = np.zeros((n_reps, k_classes, m_stations), dtype=np.int64)
        offered_np = np.zeros((n_reps, k_classes, m_stations), dtype=np.int64)
        busy_np = np.zeros((n_reps, m_stations))
        class_busy_np = np.zeros((n_reps, m_stations, k_classes))
        out_scalars = np.zeros((n_reps, 4), dtype=np.int64)
        wf_n = np.zeros((n_reps, k_classes), dtype=np.int64)
        wf_mean = np.zeros((n_reps, k_classes))
        wf_m2 = np.zeros((n_reps, k_classes))
        fail_index = (c_longlong * 1)(-1)

        def _service_cb(sampler_id: int) -> float:
            try:
                return py_samplers[sampler_id]()
            except BaseException as exc:  # propagate through the abort flag
                cb_error.append(exc)
                abort[0] = 1
                return 0.0

        service_cb = _SERVICE_CB(_service_cb)
        arrival_cb = _ARRIVAL_CB()  # NULL: fleet arrivals are all native

    failures: list[tuple[int, str]] = []
    failed: set[int] = set()
    base = 0
    with obs.span("sim.event_loop", horizon=horizon, backend="compiled", batch=n_reps):
        while base < n_reps:
            abort[0] = 0
            sampler_off = base * m_stations * k_classes * ctypes.sizeof(_SamplerDesc)
            arrival_off = base * k_classes * ctypes.sizeof(_ArrivalDesc)
            rc = lib.run_kernel_batch(
                n_reps - base,
                k_classes,
                m_stations,
                float(horizon),
                float(warmup),
                station_desc,
                ctypes.cast(
                    ctypes.byref(sampler_desc, sampler_off), POINTER(_SamplerDesc)
                ),
                ctypes.cast(
                    ctypes.byref(arrival_desc, arrival_off), POINTER(_ArrivalDesc)
                ),
                routes_v,
                route_len,
                service_cb,
                arrival_cb,
                abort,
                _as_d(wait_np[base:]),
                _as_d(sojourn_np[base:]),
                _as_ll(visit_np[base:]),
                _as_ll(blocked_np[base:]),
                _as_ll(offered_np[base:]),
                _as_d(busy_np[base:]),
                _as_d(class_busy_np[base:]),
                _as_ll(out_scalars[base:]),
                _as_ll(wf_n[base:]),
                _as_d(wf_mean[base:]),
                _as_d(wf_m2[base:]),
                fail_index,
            )
            if rc == _RC_OK:
                break
            fb = base + int(fail_index[0])
            if fail_index[0] < 0 or fb >= n_reps:
                raise SimulationError(
                    "compiled batch kernel failed without a failing index"
                )
            # Mirror the unit path's exception types/messages exactly,
            # pre-formatted the way the fleet records per-unit failures;
            # replications after the failing one resume on fresh state
            # (their streams are per-seed, so results are unaffected).
            if rc == _RC_ABORT:
                exc: BaseException = (
                    cb_error[0]
                    if cb_error
                    else SimulationError(
                        "compiled kernel aborted without a recorded error"
                    )
                )
            elif rc == _RC_NOMEM:
                exc = MemoryError("compiled simulation kernel ran out of memory")
            else:
                exc = SimulationError("completion with no busy server (compiled kernel)")
            failures.append((fb, f"{type(exc).__name__}: {exc}"))
            failed.add(fb)
            cb_error.clear()
            base = fb + 1
    del keep  # the kernel has returned; arrays may be collected now

    with obs.span("sim.batch_finalize", reps=n_reps):
        window = horizon - warmup
        idle_power = float(sum(t.servers * t.spec.power.idle for t in cluster.tiers))
        # Same expression as the unit finalize's per-tier p_dyn; hoisted
        # because it does not depend on the replication.
        tier_p_dyn = [
            t.spec.power.kappa * t.speed**t.spec.power.alpha for t in cluster.tiers
        ]
        rows: list[dict[str, Any] | None] = [None] * n_reps
        for b in range(n_reps):
            if b in failed:
                continue
            busy_list = [float(x) for x in busy_np[b]]
            dynamic_power = 0.0
            for i in range(m_stations):
                dynamic_power += tier_p_dyn[i] * busy_list[i] / window
            average_power = idle_power + dynamic_power

            # wf_* hold the C-side Welford state, bitwise equal to the
            # Python accumulators the unit path folds delay buffers
            # into; .mean is NaN on an empty accumulator.
            ncomp = wf_n[b]
            delays = np.array(
                [
                    float(wf_mean[b, k]) if ncomp[k] else float("nan")
                    for k in range(k_classes)
                ]
            )
            n_total = ncomp.sum()
            mean_delay = (
                float(np.dot(ncomp, delays) / n_total) if n_total else float("nan")
            )
            throughput = ncomp / window
            total_throughput = float(throughput.sum())
            energy_per_request = (
                average_power / total_throughput
                if total_throughput > 0
                else float("nan")
            )

            n_events = int(out_scalars[b, 1])
            n_warmup_discarded = int(out_scalars[b, 2])
            n_counted_total = int(n_total)
            n_finished_total = n_counted_total + n_warmup_discarded
            if n_finished_total > 0 and n_warmup_discarded > 0.5 * n_finished_total:
                discard_fraction = n_warmup_discarded / n_finished_total
                warnings.warn(
                    WarmupDiscardWarning(
                        f"warmup window ({warmup:g} of horizon {horizon:g}) discarded "
                        f"{n_warmup_discarded} of {n_finished_total} completed jobs "
                        f"({discard_fraction:.0%}); delay statistics rest on only "
                        f"{n_counted_total} jobs — lengthen the horizon or shrink "
                        f"warmup_fraction"
                    ),
                    stacklevel=3,
                )
                obs.event(
                    "sim.warmup_discard",
                    warmup=warmup,
                    horizon=horizon,
                    n_discarded=n_warmup_discarded,
                    n_counted=n_counted_total,
                    discard_fraction=discard_fraction,
                )
            obs.counter("sim.events").add(n_events)
            obs.counter("sim.jobs_created").add(int(out_scalars[b, 0]))
            obs.counter("sim.jobs_counted").add(n_counted_total)

            row: dict[str, Any] = {
                "n_events": n_events,
                "n_completed": n_counted_total,
                "mean_delay": mean_delay,
                "average_power": average_power,
                "energy_per_request": energy_per_request,
            }
            for k in range(k_classes):
                row[f"delay_c{k}"] = float(delays[k])
            rows[b] = row
    return rows, failures
