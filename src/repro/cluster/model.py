"""The cluster as a whole: an ordered collection of tiers.

:class:`ClusterModel` is a pure configuration object — immutable in
spirit, with ``with_speeds`` / ``with_servers`` returning modified
copies — so optimizers can explore candidate configurations without
ever mutating shared state.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cluster.tier import Tier
from repro.exceptions import ModelValidationError
from repro.queueing.networks import TandemNetwork

__all__ = ["ClusterModel"]


class ClusterModel:
    """An ordered tandem of :class:`Tier` objects.

    Parameters
    ----------
    tiers:
        The cluster's tiers, in the order requests traverse them. All
        tiers must be parameterized for the same number of classes.
    visit_ratios:
        Optional ``(num_classes, num_tiers)`` mean-visit-count matrix;
        defaults to all ones (each request visits each tier once).
    """

    def __init__(self, tiers: Sequence[Tier], visit_ratios: np.ndarray | None = None):
        if len(tiers) == 0:
            raise ModelValidationError("cluster needs at least one tier")
        k = tiers[0].num_classes
        if any(t.num_classes != k for t in tiers):
            raise ModelValidationError("all tiers must declare the same number of classes")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ModelValidationError(f"tier names must be unique, got {names}")
        self.tiers = list(tiers)
        self.num_classes = k
        self.num_tiers = len(tiers)
        if visit_ratios is None:
            visit_ratios = np.ones((k, self.num_tiers))
        visit_ratios = np.asarray(visit_ratios, dtype=float)
        if visit_ratios.shape != (k, self.num_tiers):
            raise ModelValidationError(
                f"visit_ratios must have shape ({k}, {self.num_tiers}), got {visit_ratios.shape}"
            )
        if np.any(visit_ratios < 0.0):
            raise ModelValidationError("visit ratios must be non-negative")
        self.visit_ratios = visit_ratios

    # ------------------------------------------------------------------
    # configuration views
    # ------------------------------------------------------------------
    @property
    def speeds(self) -> np.ndarray:
        """Current per-tier speeds."""
        return np.array([t.speed for t in self.tiers])

    @property
    def server_counts(self) -> np.ndarray:
        """Current per-tier server counts."""
        return np.array([t.servers for t in self.tiers], dtype=int)

    @property
    def speed_bounds(self) -> list[tuple[float, float]]:
        """Per-tier DVFS (min, max) speed bounds."""
        return [(t.spec.min_speed, t.spec.max_speed) for t in self.tiers]

    def total_cost(self) -> float:
        """Provider cost of the whole configuration (P3 objective)."""
        return float(sum(t.cost() for t in self.tiers))

    # ------------------------------------------------------------------
    # configuration transforms
    # ------------------------------------------------------------------
    def with_speeds(self, speeds: Sequence[float]) -> "ClusterModel":
        """Copy with per-tier speeds replaced."""
        speeds_arr = np.asarray(speeds, dtype=float)
        if speeds_arr.shape != (self.num_tiers,):
            raise ModelValidationError(
                f"expected {self.num_tiers} speeds, got shape {speeds_arr.shape}"
            )
        tiers = [t.with_speed(s) for t, s in zip(self.tiers, speeds_arr)]
        return ClusterModel(tiers, self.visit_ratios)

    def with_servers(self, counts: Sequence[int]) -> "ClusterModel":
        """Copy with per-tier server counts replaced."""
        counts_arr = np.asarray(counts)
        if counts_arr.shape != (self.num_tiers,):
            raise ModelValidationError(
                f"expected {self.num_tiers} server counts, got shape {counts_arr.shape}"
            )
        tiers = [t.with_servers(int(c)) for t, c in zip(self.tiers, counts_arr)]
        return ClusterModel(tiers, self.visit_ratios)

    # ------------------------------------------------------------------
    # queueing / power views
    # ------------------------------------------------------------------
    def network(self) -> TandemNetwork:
        """The analytic queueing-network view of the cluster."""
        return TandemNetwork(
            [t.station_spec() for t in self.tiers], visit_ratios=self.visit_ratios
        )

    def work_rates(self, arrival_rates: Sequence[float]) -> np.ndarray:
        """Per-tier total work arrival rate ``R_i = Σ_k v_{ik} λ_k E[D_{ik}]``."""
        lam = np.asarray(arrival_rates, dtype=float)
        if lam.shape != (self.num_classes,):
            raise ModelValidationError(
                f"expected {self.num_classes} arrival rates, got shape {lam.shape}"
            )
        return np.array(
            [t.work_rate(lam, self.visit_ratios[:, i]) for i, t in enumerate(self.tiers)]
        )

    def utilizations(self, arrival_rates: Sequence[float]) -> np.ndarray:
        """Per-tier utilization ``ρ_i = R_i / (c_i s_i)``."""
        r = self.work_rates(arrival_rates)
        return r / (self.server_counts * self.speeds)

    def is_stable(self, arrival_rates: Sequence[float]) -> bool:
        """True iff every *queueing* tier's utilization is strictly
        below 1 (loss tiers reject their overflow instead of queueing
        it, so they cannot saturate)."""
        rho = self.utilizations(arrival_rates)
        queueing = np.array([t.discipline != "loss" for t in self.tiers])
        return bool(np.all(rho[queueing] < 1.0))

    def average_power(self, arrival_rates: Sequence[float]) -> float:
        """Mean cluster power draw (watts):
        ``Σ_i [c_i P_idle,i + R_i κ_i s_i^{α_i - 1}]``."""
        r = self.work_rates(arrival_rates)
        return float(
            sum(
                t.spec.power.average_power(t.speed, float(ri), t.servers)
                for t, ri in zip(self.tiers, r)
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tiers = ", ".join(
            f"{t.name}(c={t.servers}, s={t.speed:.3g}, {t.discipline})" for t in self.tiers
        )
        return f"ClusterModel([{tiers}])"
