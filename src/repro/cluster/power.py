"""DVFS-style server power model.

A server at normalized speed ``s`` (frequency relative to nominal)
draws

    P_busy(s) = P_idle + κ s^α        while serving a job,
    P_idle                             while idle,

the standard dynamic-voltage-frequency-scaling cube law (α ≈ 3 for
CMOS, since dynamic power ∝ C V² f and V scales with f). Two derived
quantities drive every energy formula in the library:

* **Dynamic energy per unit of work** at speed ``s``: serving one work
  unit takes ``1/s`` seconds at excess power ``κ s^α``, i.e.
  ``e(s) = κ s^{α-1}`` — increasing in ``s`` for ``α > 1``, which is
  what makes the delay/energy trade-off non-trivial.
* **Average tier power** with work arrival rate ``R`` (work units per
  second) on ``c`` servers:
  ``P = c P_idle + R κ s^{α-1}``, because the expected number of busy
  servers is ``R / s`` and each draws ``κ s^α`` above idle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Per-server power curve ``P_busy(s) = idle + kappa * s**alpha``.

    Attributes
    ----------
    idle:
        Idle (static) power draw, watts; ``>= 0``.
    kappa:
        Dynamic power coefficient at ``s = 1``; ``> 0``.
    alpha:
        DVFS exponent, typically in ``[2, 3]``; must be ``> 1`` for the
        energy/performance trade-off to exist.
    """

    idle: float
    kappa: float
    alpha: float = 3.0

    def __post_init__(self) -> None:
        if self.idle < 0.0 or not np.isfinite(self.idle):
            raise ModelValidationError(f"idle power must be non-negative and finite, got {self.idle}")
        if self.kappa <= 0.0 or not np.isfinite(self.kappa):
            raise ModelValidationError(f"kappa must be positive and finite, got {self.kappa}")
        if self.alpha <= 1.0 or not np.isfinite(self.alpha):
            raise ModelValidationError(
                f"alpha must exceed 1 (no speed/energy trade-off otherwise), got {self.alpha}"
            )

    def busy_power(self, speed: float | np.ndarray) -> float | np.ndarray:
        """Power draw while serving at ``speed``: ``idle + κ s^α``."""
        s = np.asarray(speed, dtype=float)
        self._check_speed(s)
        out = self.idle + self.kappa * s**self.alpha
        return float(out) if out.ndim == 0 else out

    def dynamic_energy_per_work(self, speed: float | np.ndarray) -> float | np.ndarray:
        """Excess (above-idle) energy to process one work unit:
        ``κ s^{α-1}``."""
        s = np.asarray(speed, dtype=float)
        self._check_speed(s)
        out = self.kappa * s ** (self.alpha - 1.0)
        return float(out) if out.ndim == 0 else out

    def average_power(
        self, speed: float, work_rate: float, servers: int
    ) -> float:
        """Mean power of a ``servers``-server tier at ``speed`` with
        total work arrival rate ``work_rate`` (work units/second).

        ``P = c · idle + work_rate · κ s^{α-1}``. Valid whenever the
        tier is stable (``work_rate < c · speed``); the caller checks
        stability.
        """
        self._check_speed(np.asarray(speed))
        if work_rate < 0.0:
            raise ModelValidationError(f"work rate must be non-negative, got {work_rate}")
        if servers < 1:
            raise ModelValidationError(f"server count must be >= 1, got {servers}")
        return servers * self.idle + work_rate * self.kappa * speed ** (self.alpha - 1.0)

    @staticmethod
    def _check_speed(s: np.ndarray) -> None:
        if np.any(s <= 0.0) or not np.all(np.isfinite(s)):
            raise ModelValidationError(f"speed must be positive and finite, got {s}")
