"""Cluster model: tiers of speed-scalable servers with a power model.

The provider's cluster is a tandem of *tiers* (load balancer,
application servers, database, ...). Each tier has ``c`` identical
servers, every server running at a normalized speed ``s`` chosen by the
power manager within hardware bounds, drawing power according to a
DVFS-style model (:class:`PowerModel`), and costing the provider a
per-server price (:class:`ServerSpec`). Per-class service *demands*
are expressed in work units; a demand of ``x`` units takes ``x / s``
seconds on a speed-``s`` server.
"""

from repro.cluster.power import PowerModel
from repro.cluster.server import ServerSpec
from repro.cluster.tier import Tier
from repro.cluster.model import ClusterModel
from repro.cluster.speed_scaling import (
    proportional_speeds,
    uniform_speeds,
    utilization_capped_speeds,
)

__all__ = [
    "PowerModel",
    "ServerSpec",
    "Tier",
    "ClusterModel",
    "uniform_speeds",
    "proportional_speeds",
    "utilization_capped_speeds",
]
