"""Server hardware specification: power curve, speed range, price."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.power import PowerModel
from repro.exceptions import ModelValidationError

__all__ = ["ServerSpec"]


@dataclass(frozen=True)
class ServerSpec:
    """One server model the provider can deploy at a tier.

    Attributes
    ----------
    power:
        The server's :class:`PowerModel`.
    min_speed, max_speed:
        DVFS range of normalized speeds, ``0 < min_speed <= max_speed``.
    cost:
        Provider's cost per server per charging period (the unit of the
        P3 objective) — amortized hardware + hosting.
    name:
        Optional label for reports.
    """

    power: PowerModel
    min_speed: float = 0.5
    max_speed: float = 1.0
    cost: float = 1.0
    name: str = "server"

    def __post_init__(self) -> None:
        if not isinstance(self.power, PowerModel):
            raise ModelValidationError(f"power must be a PowerModel, got {type(self.power).__name__}")
        if not (0.0 < self.min_speed <= self.max_speed) or not np.isfinite(self.max_speed):
            raise ModelValidationError(
                f"need 0 < min_speed <= max_speed, got [{self.min_speed}, {self.max_speed}]"
            )
        if self.cost < 0.0 or not np.isfinite(self.cost):
            raise ModelValidationError(f"server cost must be non-negative and finite, got {self.cost}")

    def clamp_speed(self, speed: float) -> float:
        """Project a requested speed into the hardware's DVFS range."""
        return float(min(max(speed, self.min_speed), self.max_speed))
