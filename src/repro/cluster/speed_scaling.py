"""Static speed-scaling heuristics.

These are the simple policies a provider might use *without* the
paper's optimization machinery — they double as the baselines in the
F3/F4 trade-off experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError

__all__ = ["uniform_speeds", "proportional_speeds", "utilization_capped_speeds"]


def uniform_speeds(cluster: ClusterModel, speed: float) -> np.ndarray:
    """Every tier at the same speed, clamped into each tier's range."""
    return np.array([t.spec.clamp_speed(speed) for t in cluster.tiers])


def proportional_speeds(
    cluster: ClusterModel, arrival_rates: Sequence[float], headroom: float = 1.5
) -> np.ndarray:
    """Speed proportional to the tier's offered work: each tier ``i``
    targets ``s_i = headroom × R_i / c_i`` (utilization ``1/headroom``),
    clamped into the DVFS range.

    Parameters
    ----------
    headroom:
        Capacity multiple over offered load, ``> 1``.
    """
    if headroom <= 1.0:
        raise ModelValidationError(f"headroom must exceed 1, got {headroom}")
    r = cluster.work_rates(arrival_rates)
    raw = headroom * r / cluster.server_counts
    return np.array([t.spec.clamp_speed(s) for t, s in zip(cluster.tiers, raw)])


def utilization_capped_speeds(
    cluster: ClusterModel, arrival_rates: Sequence[float], max_utilization: float = 0.9
) -> np.ndarray:
    """The *slowest* speeds keeping every tier at or below
    ``max_utilization`` — the minimum-power static policy that is still
    stable. Raises if even max speed cannot achieve the cap.
    """
    if not 0.0 < max_utilization < 1.0:
        raise ModelValidationError(f"max_utilization must be in (0, 1), got {max_utilization}")
    r = cluster.work_rates(arrival_rates)
    required = r / (cluster.server_counts * max_utilization)
    speeds = []
    for t, s in zip(cluster.tiers, required):
        if s > t.spec.max_speed + 1e-12:
            raise ModelValidationError(
                f"tier {t.name!r} cannot reach utilization {max_utilization} even at max speed "
                f"(needs speed {s:.4g} > max {t.spec.max_speed})"
            )
        speeds.append(t.spec.clamp_speed(float(s)))
    return np.array(speeds)
