"""A cluster tier: homogeneous speed-scalable servers behind one queue."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.server import ServerSpec
from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError
from repro.queueing.networks import DISCIPLINES, StationSpec

__all__ = ["Tier"]


@dataclass(frozen=True)
class Tier:
    """One tier of the cluster.

    Attributes
    ----------
    name:
        Tier label ("web", "app", "db", ...).
    demands:
        Per-class service-*demand* distributions in work units, highest
        priority first. A demand ``D`` served at speed ``s`` takes
        ``D / s`` seconds.
    spec:
        Hardware :class:`ServerSpec` deployed at this tier.
    servers:
        Number of servers, ``>= 1``.
    speed:
        Current normalized speed, within ``spec``'s DVFS range.
    discipline:
        Queueing discipline (see :data:`repro.queueing.networks.DISCIPLINES`).
    capacity:
        Optional finite buffer: at most this many requests in the tier
        (in service + waiting); arrivals beyond are rejected. Only the
        simulator honors it (see :class:`repro.queueing.finite.MMcK`
        for the single-station analysis); the analytic tandem model
        refuses capacity-limited tiers rather than silently ignoring
        the buffer.
    """

    name: str
    demands: tuple[Distribution, ...]
    spec: ServerSpec
    servers: int = 1
    speed: float = 1.0
    discipline: str = "priority_np"
    capacity: int | None = None

    def __post_init__(self) -> None:
        if len(self.demands) == 0:
            raise ModelValidationError(f"tier {self.name!r} needs at least one class demand")
        if not all(isinstance(d, Distribution) for d in self.demands):
            raise ModelValidationError(f"tier {self.name!r}: demands must be Distribution instances")
        if self.servers < 1 or int(self.servers) != self.servers:
            raise ModelValidationError(
                f"tier {self.name!r}: server count must be a positive integer, got {self.servers}"
            )
        if not (self.spec.min_speed - 1e-12 <= self.speed <= self.spec.max_speed + 1e-12):
            raise ModelValidationError(
                f"tier {self.name!r}: speed {self.speed} outside DVFS range "
                f"[{self.spec.min_speed}, {self.spec.max_speed}]"
            )
        if self.discipline not in DISCIPLINES:
            raise ModelValidationError(
                f"tier {self.name!r}: unknown discipline {self.discipline!r}"
            )
        if self.capacity is not None:
            if int(self.capacity) != self.capacity or self.capacity < self.servers:
                raise ModelValidationError(
                    f"tier {self.name!r}: capacity must be an integer >= servers "
                    f"({self.servers}), got {self.capacity}"
                )

    @property
    def num_classes(self) -> int:
        """Number of customer classes the tier is parameterized for."""
        return len(self.demands)

    def service_times(self) -> tuple[Distribution, ...]:
        """Per-class service-*time* distributions at the current speed."""
        return tuple(d.scaled(1.0 / self.speed) for d in self.demands)

    def station_spec(self) -> StationSpec:
        """The queueing-station view of this tier.

        Raises for capacity-limited tiers: the tandem delay formulas
        assume infinite buffers, and silently dropping the limit would
        misreport both delay and loss.
        """
        if self.capacity is not None:
            raise ModelValidationError(
                f"tier {self.name!r} has a finite buffer (capacity={self.capacity}); "
                "the analytic tandem model does not support finite buffers — "
                "analyze the station with repro.queueing.MMcK or simulate it"
            )
        return StationSpec(
            services=self.service_times(),
            servers=self.servers,
            discipline=self.discipline,
            name=self.name,
        )

    def with_speed(self, speed: float) -> "Tier":
        """Copy with a new speed (validated against the DVFS range)."""
        return replace(self, speed=float(speed))

    def with_servers(self, servers: int) -> "Tier":
        """Copy with a new server count."""
        return replace(self, servers=int(servers))

    def work_rate(self, arrival_rates: np.ndarray, visit_ratios: np.ndarray) -> float:
        """Total work arrival rate (work units / second) at this tier:
        ``R = Σ_k v_k λ_k E[D_k]``.

        Parameters
        ----------
        arrival_rates:
            Per-class arrival rates ``λ_k``.
        visit_ratios:
            Per-class visit counts ``v_k`` at this tier.
        """
        means = np.array([d.mean for d in self.demands])
        return float(np.dot(np.asarray(visit_ratios) * np.asarray(arrival_rates), means))

    def cost(self) -> float:
        """Provider cost of the tier: ``servers × spec.cost``."""
        return self.servers * self.spec.cost
