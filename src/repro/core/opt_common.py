"""Shared plumbing for the P1/P2/P3 optimizers."""

from __future__ import annotations

from repro.cluster.model import ClusterModel
from repro.exceptions import InfeasibleProblemError
from repro.workload.classes import Workload

__all__ = ["stability_speed_bounds", "DEFAULT_RHO_CAP"]

# Optimizers keep every tier at or below this utilization: the queueing
# formulas are exact up to rho < 1, but the waits explode as 1/(1-rho)
# so an optimum pinned at rho ~ 1 - 1e-9 is numerically meaningless and
# operationally absurd. 0.98 leaves the interesting regime wide open.
DEFAULT_RHO_CAP = 0.98


def stability_speed_bounds(
    cluster: ClusterModel, workload: Workload, rho_cap: float = DEFAULT_RHO_CAP
) -> list[tuple[float, float]]:
    """Per-tier speed box ``[lo_i, hi_i]`` combining the DVFS range with
    the stability requirement ``ρ_i = R_i / (c_i s_i) <= rho_cap``.

    The stability cut is *linear* in the speed, so folding it into the
    box (rather than adding a nonlinear constraint) keeps the P1/P2
    programs clean for SLSQP.

    Raises
    ------
    InfeasibleProblemError
        If some tier cannot reach ``rho_cap`` even at its maximum
        speed — no speed assignment stabilizes the cluster.
    """
    work = cluster.work_rates(workload.arrival_rates)
    bounds = []
    for tier, r in zip(cluster.tiers, work):
        lo_stab = float(r) / (tier.servers * rho_cap)
        lo = max(tier.spec.min_speed, lo_stab)
        hi = tier.spec.max_speed
        if lo > hi + 1e-12:
            raise InfeasibleProblemError(
                f"tier {tier.name!r} needs speed >= {lo:.6g} to stay below utilization "
                f"{rho_cap} but its maximum speed is {hi:.6g}; add servers or shed load"
            )
        bounds.append((min(lo, hi), hi))
    return bounds
