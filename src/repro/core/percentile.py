"""Percentile end-to-end delays (beyond-the-mean SLA guarantees).

Real SLAs are often phrased as percentiles ("95% of gold requests
finish within 300 ms"), not means. Two tools support them:

**M/G/1 waiting-time variance** (Takács). The FCFS M/G/1 waiting time
satisfies

    E[W]   = λ E[S²] / (2 (1 − ρ)),
    E[W²]  = 2 E[W]² + λ E[S³] / (3 (1 − ρ)),

so the variance of the wait — and, adding an independent service time,
of the sojourn — is exact given the service distribution's first three
moments (exposed as ``Distribution.third_moment``).

**Hypoexponential end-to-end tail.** For the cluster's per-class
end-to-end delay the library uses the classic engineering
approximation (the one the author's related SLA work employs): treat
the class-``k`` sojourn at each tier visit as an *exponential* with
the analytic mean ``T_{ik}``, so the end-to-end delay is a sum of
independent exponentials — a hypoexponential (phase-type) distribution
whose survival function is evaluated exactly via the matrix
exponential of its bidiagonal generator. Percentiles come from a
bracketed root search on that survival function. For an exponential
single tier the approximation is *exact* in the FCFS M/M/1 case
(sojourn times there are exponential); experiment F7 measures its
accuracy per class against simulated percentiles for the full priority
cluster.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.linalg import expm
from scipy.optimize import brentq

from repro.cluster.model import ClusterModel
from repro.core.delay import per_tier_delays
from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError
from repro.queueing.stability import check_stability
from repro.workload.classes import Workload

__all__ = [
    "mg1_wait_moments",
    "mg1_sojourn_variance",
    "hypoexponential_survival",
    "class_delay_survival",
    "class_delay_percentile",
    "all_class_percentiles",
    "all_class_percentiles_batch",
    "class_delay_percentile_ph",
]


def mg1_wait_moments(lam: float, service: Distribution) -> tuple[float, float]:
    """Exact first two moments of the FCFS M/G/1 waiting time (Takács).

    Returns ``(E[W], E[W²])``; the second moment is ``inf`` when the
    service distribution's third moment is infinite.
    """
    if not isinstance(service, Distribution):
        raise ModelValidationError(f"service must be a Distribution, got {type(service).__name__}")
    rho = check_stability(lam * service.mean, where="M/G/1")
    ew = lam * service.second_moment / (2.0 * (1.0 - rho))
    ew2 = 2.0 * ew**2 + lam * service.third_moment / (3.0 * (1.0 - rho))
    return ew, ew2


def mg1_sojourn_variance(lam: float, service: Distribution) -> float:
    """Exact variance of the FCFS M/G/1 sojourn time:
    ``Var[T] = Var[W] + Var[S]`` (wait and own service independent)."""
    ew, ew2 = mg1_wait_moments(lam, service)
    return (ew2 - ew**2) + service.variance


def hypoexponential_survival(t: float, rates: Sequence[float]) -> float:
    """``P(X₁ + ... + X_d > t)`` for independent ``X_i ~ Exp(rates[i])``.

    Evaluated through the matrix exponential of the phase-type
    generator (upper-bidiagonal), which is numerically robust for
    repeated or nearly-equal rates where the textbook partial-fraction
    formula cancels catastrophically.
    """
    r = np.asarray(rates, dtype=float)
    if r.ndim != 1 or r.size == 0:
        raise ModelValidationError("need at least one phase rate")
    if np.any(r <= 0.0) or not np.all(np.isfinite(r)):
        raise ModelValidationError(f"phase rates must be positive and finite, got {r}")
    if t <= 0.0:
        return 1.0
    d = r.size
    q = np.diag(-r)
    for i in range(d - 1):
        q[i, i + 1] = r[i]
    probs = expm(q * t)[0]
    return float(np.clip(probs.sum(), 0.0, 1.0))


def _class_phase_rates(cluster: ClusterModel, workload: Workload, k: int) -> np.ndarray:
    """One exponential phase per tier visit for class ``k``, with rate
    ``1 / T_{ik}`` (reciprocal of the analytic per-visit sojourn)."""
    if not 0 <= k < workload.num_classes:
        raise ModelValidationError(f"class index {k} out of range [0, {workload.num_classes})")
    per_tier = per_tier_delays(cluster, workload)
    visits = cluster.visit_ratios[k]
    if not np.allclose(visits, np.round(visits)):
        raise ModelValidationError(
            f"percentile delays need integer visit ratios, got {visits.tolist()}"
        )
    rates = []
    for i, delays in enumerate(per_tier):
        v = int(round(visits[i]))
        sojourn = float(delays.mean_sojourns[k])
        if v > 0 and sojourn > 0.0:
            rates.extend([1.0 / sojourn] * v)
    if not rates:
        raise ModelValidationError(f"class {k} visits no tier")
    return np.asarray(rates)


def class_delay_survival(
    cluster: ClusterModel, workload: Workload, k: int, t: float
) -> float:
    """Approximate ``P(end-to-end delay of class k > t)``."""
    return hypoexponential_survival(t, _class_phase_rates(cluster, workload, k))


def class_delay_percentile(
    cluster: ClusterModel, workload: Workload, k: int, p: float
) -> float:
    """Approximate ``p``-percentile of class ``k``'s end-to-end delay.

    Parameters
    ----------
    p:
        Percentile level in (0, 1), e.g. ``0.95``.
    """
    if not 0.0 < p < 1.0:
        raise ModelValidationError(f"percentile level must be in (0, 1), got {p}")
    rates = _class_phase_rates(cluster, workload, k)
    target = 1.0 - p

    def excess(t: float) -> float:
        return hypoexponential_survival(t, rates) - target

    mean = float(np.sum(1.0 / rates))
    hi = mean
    # Exponential tails decay fast: doubling finds a bracket quickly.
    for _ in range(60):
        if excess(hi) < 0.0:
            break
        hi *= 2.0
    else:  # pragma: no cover - mathematically unreachable for finite p
        raise ModelValidationError("failed to bracket the percentile")
    return float(brentq(excess, 0.0, hi, xtol=1e-12, rtol=1e-10))


def all_class_percentiles(
    cluster: ClusterModel, workload: Workload, p: float
) -> np.ndarray:
    """``p``-percentile end-to-end delay of every class (priority order)."""
    return np.array(
        [class_delay_percentile(cluster, workload, k, p) for k in range(workload.num_classes)]
    )


#: Minimum pairwise relative phase-rate gap for the partial-fraction
#: survival form; candidates below it (near-identical per-visit
#: sojourns, where the expansion cancels catastrophically) fall back to
#: the scalar matrix-exponential path.
_PF_MIN_RATE_GAP = 1e-6


def all_class_percentiles_batch(
    cluster: ClusterModel,
    workload: Workload,
    speeds: np.ndarray,
    p: float,
    servers: np.ndarray | None = None,
) -> np.ndarray:
    """``p``-percentile delays of every class for a whole speed matrix.

    Vectorized counterpart of :func:`all_class_percentiles`: for an
    ``(n, M)`` speed matrix (and optional per-candidate server counts)
    returns the ``(n, K)`` per-class percentile delays. Per-tier mean
    sojourns come from one
    :class:`repro.core.batch_eval.BatchEvaluator` pass; the
    hypoexponential survival is then evaluated in closed form via its
    partial-fraction expansion ``S(t) = Σ_i A_i e^{-r_i t}`` with
    ``A_i = Π_{j≠i} r_j / (r_j − r_i)`` and inverted by a vectorized
    bisection, all candidates at once.

    The expansion requires pairwise-distinct phase rates, so candidates
    whose rates nearly coincide — and classes with repeated tier visits
    (``v_{ik} > 1``), whose rates coincide *exactly* — fall back to the
    scalar matrix-exponential path one candidate at a time (a
    documented limitation, not an approximation: both paths evaluate
    the same survival function). Unstable candidates get ``inf``.
    """
    if not 0.0 < p < 1.0:
        raise ModelValidationError(f"percentile level must be in (0, 1), got {p}")
    from repro.core.batch_eval import BatchEvaluator

    evaluator = BatchEvaluator(cluster, workload)
    speeds_arr = np.asarray(speeds, dtype=float)
    if speeds_arr.ndim == 1:
        speeds_arr = speeds_arr[None, :]
    sojourns = evaluator.per_tier_sojourns(speeds_arr, servers)  # (n, M, K)
    visits = cluster.visit_ratios  # (K, M)
    if not np.allclose(visits, np.round(visits)):
        raise ModelValidationError(
            f"percentile delays need integer visit ratios, got {visits.tolist()}"
        )
    n = sojourns.shape[0]
    k_classes = workload.num_classes
    out = np.empty((n, k_classes))
    unstable = ~np.isfinite(sojourns[:, 0, 0])
    out[unstable] = np.inf
    stable = np.flatnonzero(~unstable)
    if stable.size == 0:
        return out
    target = 1.0 - p

    def scalar_fallback(rows: np.ndarray, k: int) -> None:
        if servers is None:
            counts = np.broadcast_to(evaluator.default_servers, speeds_arr.shape)
        else:
            counts = np.broadcast_to(np.asarray(servers, dtype=int), speeds_arr.shape)
        for j in rows:
            configured = cluster.with_servers(counts[j]).with_speeds(speeds_arr[j])
            out[j, k] = class_delay_percentile(configured, workload, k, p)

    for k in range(k_classes):
        tier_idx = [i for i in range(cluster.num_tiers) if round(visits[k, i]) > 0]
        if not tier_idx:
            raise ModelValidationError(f"class {k} visits no tier")
        counts_per_tier = [int(round(visits[k, i])) for i in tier_idx]
        if any(v > 1 for v in counts_per_tier):
            # Repeated visits mean exactly repeated rates — no
            # partial-fraction form; take the expm path per candidate.
            scalar_fallback(stable, k)
            continue
        rates = 1.0 / sojourns[np.ix_(stable, tier_idx, [k])][:, :, 0]  # (ns, d)
        d = rates.shape[1]
        if d == 1:
            out[stable, k] = -np.log(target) / rates[:, 0]
            continue
        # Pairwise relative gaps; tiny gaps cancel catastrophically.
        gap = np.abs(rates[:, :, None] - rates[:, None, :])
        gap[:, np.arange(d), np.arange(d)] = np.inf
        degenerate = gap.min(axis=(1, 2)) < _PF_MIN_RATE_GAP * rates.max(axis=1)
        good = stable[~degenerate]
        if np.any(degenerate):
            scalar_fallback(stable[degenerate], k)
        if good.size == 0:
            continue
        r = rates[~degenerate]  # (ng, d)
        # A_i = Π_{j≠i} r_j / (r_j − r_i); factors[g, i, j]. The i == j
        # diagonal divides by zero and is overwritten with 1 below.
        with np.errstate(divide="ignore", invalid="ignore"):
            factors = r[:, None, :] / (r[:, None, :] - r[:, :, None])
        factors[:, np.arange(d), np.arange(d)] = 1.0
        coeff = factors.prod(axis=2)  # (ng, d)

        def survival(t: np.ndarray) -> np.ndarray:
            return (coeff * np.exp(-r * t[:, None])).sum(axis=1)

        # Bracket by doubling from the mean, then plain bisection —
        # every candidate advances in lockstep, entirely in NumPy.
        hi = (1.0 / r).sum(axis=1)
        for _ in range(60):
            above = survival(hi) >= target
            if not np.any(above):
                break
            hi = np.where(above, 2.0 * hi, hi)
        lo = np.zeros_like(hi)
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            s_mid = survival(mid)
            gt = s_mid > target
            lo = np.where(gt, mid, lo)
            hi = np.where(gt, hi, mid)
        out[good, k] = 0.5 * (lo + hi)
    return out


def class_delay_percentile_ph(
    cluster: ClusterModel, workload: Workload, k: int, p: float
) -> float:
    """Exact-per-tier percentile for all-FCFS, phase-type clusters.

    When every tier runs FCFS with phase-type-representable service
    (exponential, Erlang, hyperexponential, mixtures), the per-tier
    sojourn distribution is *exact* (M/PH/1, see
    :mod:`repro.queueing.phase_type`; exact M/M/c for multi-server
    tiers with common exponential service) and the end-to-end delay is
    their convolution — still under the tandem independence
    approximation, but with no shape assumption on the per-tier
    sojourns. Sharper than :func:`class_delay_percentile` wherever it
    applies.

    Raises
    ------
    ModelValidationError
        If any tier is not FCFS, has multiple servers with
        non-identical-exponential service, or a service distribution
        with no exact PH form.
    """
    from repro.queueing.phase_type import as_phase_type

    if not 0.0 < p < 1.0:
        raise ModelValidationError(f"percentile level must be in (0, 1), got {p}")
    if not 0 <= k < workload.num_classes:
        raise ModelValidationError(f"class index {k} out of range [0, {workload.num_classes})")
    visits = cluster.visit_ratios[k]
    if not np.allclose(visits, np.round(visits)):
        raise ModelValidationError("PH percentile path needs integer visit ratios")
    lam = workload.arrival_rates
    total: object | None = None
    for i, tier in enumerate(cluster.tiers):
        v = int(round(visits[i]))
        if v == 0:
            continue
        if tier.discipline != "fcfs":
            raise ModelValidationError(
                f"tier {tier.name!r} is {tier.discipline}; the exact PH path needs "
                "FCFS tiers — use class_delay_percentile for the general case"
            )
        # Aggregate arrival stream at the tier; FCFS sojourn of class k
        # uses the aggregate-mixture service (every class waits behind
        # the same queue).
        tier_rates = cluster.visit_ratios[:, i] * lam
        tier_total = float(tier_rates.sum())
        probs = tier_rates / tier_total
        services = tier.service_times()
        if tier.servers > 1:
            from repro.distributions.exponential import Exponential as _Exp
            from repro.queueing.phase_type import mmc_sojourn_ph

            rates = [s.rate for s in services if isinstance(s, _Exp)]
            if len(rates) != len(services) or not np.allclose(rates, rates[0]):
                raise ModelValidationError(
                    f"tier {tier.name!r} has {tier.servers} servers; the exact "
                    "multi-server path needs identical exponential service for "
                    "every class — use class_delay_percentile otherwise"
                )
            sojourn = mmc_sojourn_ph(tier_total, rates[0], tier.servers)
        else:
            if any(as_phase_type(s) is None for s in services):
                raise ModelValidationError(
                    f"tier {tier.name!r} has a service distribution without an exact "
                    "phase-type form"
                )
            from repro.distributions.mixture import Mixture

            agg = services[0] if len(services) == 1 else Mixture(probs.tolist(), list(services))
            # Wait behind the aggregate flow, then the class's own service.
            from repro.queueing.phase_type import mph1_waiting_time

            wait = mph1_waiting_time(tier_total, agg)
            own = as_phase_type(services[k])
            sojourn = wait.convolve(own)
        for _ in range(v):
            total = sojourn if total is None else total.convolve(sojourn)
    if total is None:
        raise ModelValidationError(f"class {k} visits no tier")
    return float(total.quantile(p))
