"""P3 — minimize provider cost under per-class priority SLA guarantees.

Abstract claim 4: "an approach for minimizing the total cost of cluster
computing resources allocated to ensure multiple priority customer
service guarantees". The decision is the vector of per-tier server
counts ``c`` (integers), with speeds as a secondary lever:

    minimize    Σ_i c_i · cost_i
    subject to  T_k(c, s_max) <= D_k   for every class k
                c_i in [c_i^min, c_i^max] integer,

where ``c_i^min`` is the smallest count that can stabilize the tier at
maximum speed. Feasibility is judged at maximum speeds (delays are
non-increasing in every ``c_i`` and decreasing in speed, so if a count
vector fails at ``s_max`` it fails everywhere).

Search strategy (evaluated against exhaustive enumeration in T3/T4):

1. start at the stability lower bound,
2. greedily add the server with the best SLA-violation relief per
   dollar until feasible,
3. cost-descent local search (delete / swap) to squeeze the allocation,
4. optionally re-run P2b on the final counts to pick the slowest —
   cheapest to operate — speeds that still meet the SLA
   (``optimize_speeds=True``), combining claim 4's provisioning with
   claim 3's power management.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.cluster.model import ClusterModel
from repro.core.delay import end_to_end_delays
from repro.core.feasibility import sla_feasibility
from repro.core.opt_common import DEFAULT_RHO_CAP
from repro.core.opt_energy import minimize_energy
from repro.core.sla import SLA
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.optimize.integer import greedy_integer_allocation, integer_local_search
from repro.workload.classes import Workload

__all__ = ["CostAllocation", "minimize_cost"]


@dataclass
class CostAllocation:
    """Result of the P3 cost minimization.

    Attributes
    ----------
    cluster:
        The final configuration (counts and, if requested, energy-
        optimal speeds).
    server_counts:
        Optimal per-tier counts.
    speeds:
        Final per-tier speeds.
    total_cost:
        ``Σ_i c_i cost_i`` at the optimum.
    delays:
        Achieved per-class end-to-end delays.
    average_power:
        Average power of the final configuration.
    n_evaluations:
        *Fresh* SLA-feasibility evaluations spent by the integer search
        (the T4 efficiency metric); memo hits are excluded and reported
        separately as ``meta["evals_cached"]``.
    meta:
        Extras (greedy iterate, bounds, ``evals``/``evals_cached``
        counters, the P2b result when speeds were optimized).
    """

    cluster: ClusterModel
    server_counts: np.ndarray
    speeds: np.ndarray
    total_cost: float
    delays: np.ndarray
    average_power: float
    n_evaluations: int
    meta: dict[str, Any] = field(default_factory=dict)


def minimize_cost(
    cluster: ClusterModel,
    workload: Workload,
    sla: SLA,
    max_servers_per_tier: int | None = 64,
    optimize_speeds: bool = True,
    rho_cap: float = DEFAULT_RHO_CAP,
    counts_hint: np.ndarray | None = None,
    feasibility_memo: dict | None = None,
) -> CostAllocation:
    """Solve P3: the cheapest server allocation meeting every class's
    priority SLA.

    Parameters
    ----------
    cluster:
        Template configuration — tier specs, demands, disciplines and
        visit ratios are kept; current counts/speeds are ignored.
    workload:
        Offered multi-class workload.
    sla:
        Per-class mean end-to-end delay guarantees.
    max_servers_per_tier:
        Upper search bound per tier (uniform). ``None`` lets the
        search pick a bound by doubling until feasible.
    optimize_speeds:
        After fixing counts, run P2b to slow the tiers down to the
        energy-minimal speeds that still meet the SLA.
    counts_hint:
        Optional warm-start counts (e.g. the optimum of a neighboring
        sweep point). Clipped into the search box; a feasible hint
        replaces the greedy growth phase, an infeasible one seeds it —
        either way the local search still runs, so the returned
        allocation is locally cost-optimal exactly as in a cold solve.
    feasibility_memo:
        Optional dict reused across solves of the *same*
        ``(cluster, workload, sla)`` triple (e.g. the P4 anchors along
        an energy-price sweep); feasibility is a pure function of the
        count vector there, so memo hits are sound. Do **not** share
        one memo across different workloads or SLAs.

    Raises
    ------
    InfeasibleProblemError
        If no allocation within the bounds meets the SLA.
    """
    bounds_arr = sla.delay_bounds(workload)
    lam = workload.arrival_rates
    at_max_speed = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
    work = at_max_speed.work_rates(lam)

    lower = np.array(
        [
            max(1, int(np.ceil(r / (t.spec.max_speed * rho_cap))))
            for t, r in zip(at_max_speed.tiers, work)
        ],
        dtype=int,
    )

    # Feasibility is a pure function of the count vector (everything
    # else is fixed for this solve), so every evaluation is memoized:
    # the greedy phase and the local search probe overlapping
    # neighborhoods and used to re-pay for the same vectors.
    memo: dict[tuple[int, ...], tuple[bool, float]] = (
        feasibility_memo if feasibility_memo is not None else {}
    )
    evals = [0]
    cached = [0]

    def evaluate(counts: np.ndarray) -> tuple[bool, float]:
        key = tuple(int(c) for c in counts)
        hit = memo.get(key)
        if hit is not None:
            cached[0] += 1
            return hit
        evals[0] += 1
        out = _feasible(at_max_speed, workload, sla, counts)
        memo[key] = out
        return out

    if max_servers_per_tier is not None:
        if max_servers_per_tier < 1:
            raise ModelValidationError(
                f"max_servers_per_tier must be >= 1, got {max_servers_per_tier}"
            )
        upper = np.maximum(lower, max_servers_per_tier)
    else:
        # Double a uniform headroom multiplier until the all-upper
        # configuration is feasible (or give up at 4096x the lower bound).
        mult = 2
        while True:
            upper = lower * mult + 4
            if evaluate(upper)[0]:
                break
            mult *= 2
            if mult > 4096:
                raise InfeasibleProblemError(
                    "SLA cannot be met even with 4096x the stability-minimum servers; "
                    "the bounds are below the zero-queueing service times"
                )

    def cost(counts: np.ndarray) -> float:
        return float(
            sum(int(c) * t.spec.cost for c, t in zip(counts, at_max_speed.tiers))
        )

    hint: np.ndarray | None = None
    if counts_hint is not None:
        hint = np.clip(np.asarray(counts_hint, dtype=int), lower, upper)

    with obs.span("optimize.solve", label="p3", method="greedy+local") as p3_span:
        if hint is not None and evaluate(hint)[0]:
            # Feasible warm start: the greedy growth phase is redundant
            # — the local search below prunes it down exactly as it
            # would prune the greedy iterate.
            greedy = hint.copy()
        else:
            greedy = greedy_integer_allocation(evaluate, cost, lower, upper, start=hint)
        counts = integer_local_search(greedy, evaluate, cost, lower, upper)

    final = at_max_speed.with_servers(counts)
    meta: dict[str, Any] = {
        "greedy_counts": greedy.copy(),
        "lower_bounds": lower,
        "upper_bounds": upper,
        "evals": evals[0],
        "evals_cached": cached[0],
    }
    if hint is not None:
        meta["counts_hint"] = hint.copy()

    if optimize_speeds:
        p2b = minimize_energy(
            final, workload, class_delay_bounds=bounds_arr, rho_cap=rho_cap
        )
        if p2b.success:
            tuned = p2b.meta["cluster"]
            # P2b only enforces the mean bounds; a percentile guarantee
            # could still break at the slower speeds — keep max speeds
            # if it does.
            if not sla.has_percentiles or sla_feasibility(tuned, workload, sla)[0]:
                final = tuned
                meta["speed_optimization"] = p2b
            else:
                meta["speed_optimization_rejected"] = "percentile guarantee binds at reduced speeds"
        else:  # pragma: no cover - SLSQP failure fallback keeps max speeds
            meta["speed_optimization_failed"] = p2b.message

    delays = end_to_end_delays(final, workload)
    obs.event(
        "solver.result",
        label="p3",
        method="greedy+local",
        success=True,
        fun=final.total_cost(),
        nit=0,
        nfev=evals[0],
        status=0,
        message="greedy + local search converged",
        n_evaluations=evals[0],
        constraint_violation=0.0,
        wall_s=p3_span.wall_s,
    )
    obs.counter("opt.solves").inc()
    obs.counter("opt.evaluations").add(evals[0])
    return CostAllocation(
        cluster=final,
        server_counts=np.asarray(counts, dtype=int),
        speeds=final.speeds,
        total_cost=final.total_cost(),
        delays=delays,
        average_power=final.average_power(lam),
        n_evaluations=evals[0],
        meta=meta,
    )


def _feasible(
    cluster_max_speed: ClusterModel,
    workload: Workload,
    sla: SLA,
    counts: np.ndarray,
) -> tuple[bool, float]:
    """SLA feasibility (mean + percentile guarantees) of a count
    vector at maximum speeds; see
    :func:`repro.core.feasibility.sla_feasibility` for the score
    semantics."""
    candidate = cluster_max_speed.with_servers(np.maximum(np.asarray(counts, dtype=int), 1))
    return sla_feasibility(candidate, workload, sla)
