"""Service level agreements.

"A service provider processes the service requests of customers
according to a service level agreement (SLA) ... It becomes important
and commonplace to prioritize multiple customer services in favor of
customers who are willing to pay higher fees" (abstract). An
:class:`SLA` binds each priority class to a mean end-to-end delay
guarantee; the P2b and P3 optimizers enforce these per-class bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ModelValidationError
from repro.workload.classes import Workload

__all__ = ["ClassSLA", "SLA"]


@dataclass(frozen=True)
class ClassSLA:
    """Per-class guarantee.

    Attributes
    ----------
    name:
        Must match a :class:`repro.workload.CustomerClass` name.
    max_mean_delay:
        Upper bound on the class's mean end-to-end delay (seconds).
    fee:
        What the class pays per request — used in revenue-aware
        reports; higher-priority classes typically pay more.
    percentile, max_percentile_delay:
        Optional percentile guarantee: "a fraction ``percentile`` of
        requests finish within ``max_percentile_delay`` seconds".
        Both must be given together. Enforced by the P3 cost
        minimizer through the hypoexponential tail approximation
        (:mod:`repro.core.percentile`).
    """

    name: str
    max_mean_delay: float
    fee: float = 0.0
    percentile: float | None = None
    max_percentile_delay: float | None = None

    def __post_init__(self) -> None:
        if self.max_mean_delay <= 0.0 or not np.isfinite(self.max_mean_delay):
            raise ModelValidationError(
                f"SLA for {self.name!r}: delay bound must be positive and finite, "
                f"got {self.max_mean_delay}"
            )
        if self.fee < 0.0 or not np.isfinite(self.fee):
            raise ModelValidationError(f"SLA for {self.name!r}: fee must be non-negative")
        if (self.percentile is None) != (self.max_percentile_delay is None):
            raise ModelValidationError(
                f"SLA for {self.name!r}: percentile and max_percentile_delay "
                "must be given together"
            )
        if self.percentile is not None:
            if not 0.0 < self.percentile < 1.0:
                raise ModelValidationError(
                    f"SLA for {self.name!r}: percentile must be in (0, 1), got {self.percentile}"
                )
            if self.max_percentile_delay <= 0.0 or not np.isfinite(self.max_percentile_delay):
                raise ModelValidationError(
                    f"SLA for {self.name!r}: percentile delay bound must be positive and finite"
                )

    @property
    def has_percentile(self) -> bool:
        """True when this guarantee also bounds a delay percentile."""
        return self.percentile is not None


class SLA:
    """A set of per-class guarantees covering a workload.

    Examples
    --------
    >>> from repro.workload import workload_from_rates
    >>> w = workload_from_rates([1.0, 2.0])
    >>> sla = SLA([ClassSLA("gold", 0.5), ClassSLA("silver", 2.0)])
    >>> sla.delay_bounds(w).tolist()
    [0.5, 2.0]
    """

    def __init__(self, guarantees: Sequence[ClassSLA]):
        if len(guarantees) == 0:
            raise ModelValidationError("SLA needs at least one class guarantee")
        if not all(isinstance(g, ClassSLA) for g in guarantees):
            raise ModelValidationError("guarantees must be ClassSLA instances")
        names = [g.name for g in guarantees]
        if len(set(names)) != len(names):
            raise ModelValidationError(f"duplicate class names in SLA: {names}")
        self.guarantees = list(guarantees)
        self._by_name = {g.name: g for g in guarantees}

    def __getitem__(self, name: str) -> ClassSLA:
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelValidationError(
                f"no SLA for class {name!r}; have {sorted(self._by_name)}"
            ) from None

    def delay_bounds(self, workload: Workload) -> np.ndarray:
        """Per-class bounds aligned with the workload's priority order.

        Raises if any workload class lacks a guarantee.
        """
        return np.array([self[name].max_mean_delay for name in workload.names])

    def is_met(self, delays: np.ndarray, workload: Workload, tol: float = 0.0) -> bool:
        """True iff every class's delay is within its bound (+ tol)."""
        return bool(np.all(np.asarray(delays) <= self.delay_bounds(workload) + tol))

    def violations(self, delays: np.ndarray, workload: Workload) -> np.ndarray:
        """Per-class ``max(T_k − D_k, 0)`` — the P3 greedy search's
        infeasibility score sums these."""
        return np.maximum(np.asarray(delays) - self.delay_bounds(workload), 0.0)

    @property
    def has_percentiles(self) -> bool:
        """True when any class carries a percentile guarantee."""
        return any(g.has_percentile for g in self.guarantees)

    def percentile_specs(self, workload: Workload) -> list[tuple[int, float, float]]:
        """The percentile guarantees as ``(class_index, level, bound)``
        triples in workload priority order (empty when none)."""
        out = []
        for k, name in enumerate(workload.names):
            g = self[name]
            if g.has_percentile:
                out.append((k, float(g.percentile), float(g.max_percentile_delay)))
        return out

    def revenue_rate(self, workload: Workload) -> float:
        """Provider revenue per unit time: ``Σ_k λ_k fee_k``."""
        fees = np.array([self[name].fee for name in workload.names])
        return float(np.dot(workload.arrival_rates, fees))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{g.name}<= {g.max_mean_delay:.4g}s" for g in self.guarantees)
        return f"SLA([{body}])"
