"""P4 — minimize total cost of ownership (servers + energy) under SLAs.

A forward-looking combination of the paper's P2 and P3 (its "total
cost" objective priced only hardware): the provider pays both for the
servers it deploys *and* for the energy they draw over the charging
period, so the objective becomes

    TCO(c, s) = Σ_i c_i · cost_i  +  price · P(c, s)

subject to the same per-class SLA guarantees, over integer counts and
continuous speeds. The energy price turns the count/speed interaction
interesting: when energy is cheap the optimum is the P3 corner (fewest
servers, fast); when energy is expensive, *more* servers running
slower can win — each unit of work costs ``κ s^{α−1}`` joules, so
halving the speed cuts per-work energy by ``(α−1)``-fold powers — up
to the point where the added idle draw eats the saving.

Search: the cost-only optimum (P3) anchors a window of count vectors
``[c^{P3}, c^{P3} + window]``; each candidate's speeds are tuned by
P2b and its TCO evaluated; the best candidate wins. The window is
sound because counts below the P3 optimum are SLA-infeasible by P3's
optimality, and the experiments (F9) sweep the price to show the
crossover the window exists to capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.delay import end_to_end_delays
from repro.core.feasibility import sla_feasibility
from repro.core.opt_cost import minimize_cost
from repro.core.opt_energy import minimize_energy
from repro.core.sla import SLA
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.workload.classes import Workload

__all__ = ["TCOAllocation", "minimize_tco"]


@dataclass
class TCOAllocation:
    """Result of the P4 TCO minimization.

    Attributes
    ----------
    cluster:
        Final configuration (counts + tuned speeds).
    server_counts, speeds:
        The decision variables at the optimum.
    server_cost:
        Hardware part of the objective.
    energy_cost:
        ``price × average power`` part.
    total_cost:
        The minimized TCO.
    average_power, delays:
        Operating point of the final configuration.
    n_candidates:
        Count vectors evaluated (the efficiency metric).
    meta:
        Extras (the anchoring P3 allocation, the window used).
    """

    cluster: ClusterModel
    server_counts: np.ndarray
    speeds: np.ndarray
    server_cost: float
    energy_cost: float
    total_cost: float
    average_power: float
    delays: np.ndarray
    n_candidates: int
    meta: dict[str, Any] = field(default_factory=dict)


def minimize_tco(
    cluster: ClusterModel,
    workload: Workload,
    sla: SLA,
    energy_price: float,
    window: int = 2,
    max_servers_per_tier: int | None = 64,
    n_starts: int = 2,
    p3_counts_hint: np.ndarray | None = None,
    feasibility_memo: dict | None = None,
) -> TCOAllocation:
    """Solve P4: minimize server + energy cost subject to the SLA.

    Parameters
    ----------
    energy_price:
        Cost units per watt of average power over the charging period
        (i.e. an energy price already multiplied by the period
        length). ``0`` reduces P4 to P3 + P2b.
    window:
        How many servers above the P3 optimum to explore per tier.
    p3_counts_hint, feasibility_memo:
        Warm-start state for the anchoring P3 solve, forwarded to
        :func:`repro.core.opt_cost.minimize_cost`. The P3 anchor does
        not depend on the energy price, so a price sweep (F9) can share
        one memo and the first anchor's counts across every point.

    Raises
    ------
    InfeasibleProblemError
        If no allocation meets the SLA (propagated from P3).
    """
    if energy_price < 0.0 or not np.isfinite(energy_price):
        raise ModelValidationError(f"energy price must be non-negative and finite, got {energy_price}")
    if window < 0:
        raise ModelValidationError(f"window must be non-negative, got {window}")

    anchor = minimize_cost(
        cluster,
        workload,
        sla,
        max_servers_per_tier=max_servers_per_tier,
        optimize_speeds=False,
        counts_hint=p3_counts_hint,
        feasibility_memo=feasibility_memo,
    )
    base = anchor.server_counts
    lam = workload.arrival_rates
    costs = np.array([t.spec.cost for t in cluster.tiers])

    # Dynamic power is bounded below by running every tier at its
    # slowest speed (e(s) = kappa s^(alpha-1) is increasing), so
    #   TCO(c, s) >= server_cost(c) + price * (idle(c) + dynamic_min)
    # — a cheap certificate that lets most of the window skip the
    # expensive inner P2b solve.
    work = cluster.work_rates(lam)
    dynamic_min = float(
        sum(
            r * t.spec.power.kappa * t.spec.min_speed ** (t.spec.power.alpha - 1.0)
            for t, r in zip(cluster.tiers, work)
        )
    )
    idle_per_server = np.array([t.spec.power.idle for t in cluster.tiers])

    best: tuple[float, np.ndarray, ClusterModel] | None = None
    n_candidates = 0
    for deltas in product(range(window + 1), repeat=cluster.num_tiers):
        counts = base + np.array(deltas, dtype=int)
        n_candidates += 1
        tco_lower = float(np.dot(counts, costs)) + energy_price * (
            float(np.dot(counts, idle_per_server)) + dynamic_min
        )
        if best is not None and tco_lower >= best[0]:
            continue
        candidate = cluster.with_servers(counts).with_speeds(
            [t.spec.max_speed for t in cluster.tiers]
        )
        feasible, _ = sla_feasibility(candidate, workload, sla)
        if not feasible:  # pragma: no cover - adding servers keeps feasibility
            continue
        # Tune speeds to the cheapest energy meeting the mean bounds.
        try:
            p2b = minimize_energy(
                candidate,
                workload,
                class_delay_bounds=sla.delay_bounds(workload),
                n_starts=n_starts,
            )
        except InfeasibleProblemError:  # pragma: no cover - feasible at max speed
            continue
        tuned = p2b.meta["cluster"] if p2b.success else candidate
        if sla.has_percentiles and not sla_feasibility(tuned, workload, sla)[0]:
            tuned = candidate  # percentile binds: keep max speeds
        power = tuned.average_power(lam)
        tco = float(np.dot(counts, costs)) + energy_price * power
        if best is None or tco < best[0]:
            best = (tco, counts.copy(), tuned)

    assert best is not None  # the P3 anchor itself is always feasible
    tco, counts, final = best
    power = final.average_power(lam)
    server_cost = float(np.dot(counts, costs))
    return TCOAllocation(
        cluster=final,
        server_counts=counts,
        speeds=final.speeds,
        server_cost=server_cost,
        energy_cost=energy_price * power,
        total_cost=tco,
        average_power=power,
        delays=end_to_end_delays(final, workload),
        n_candidates=n_candidates,
        meta={"p3_counts": base, "window": window},
    )
