"""Shared SLA-feasibility evaluation (mean + percentile guarantees).

Both the P3 greedy/local search and the exhaustive certifier judge
candidate configurations through this one function, so "feasible"
means the same thing everywhere: every class's *mean* end-to-end delay
bound holds, and — when the SLA carries percentile guarantees — every
class's approximate *percentile* delay bound holds too.

The returned score drives the greedy search's gradient: it is 0
exactly when feasible, sums *relative* violations otherwise, and jumps
to a saturation-scaled 1e6 band when the configuration is not even
stable (so the search first buys stability, then SLA slack).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.delay import end_to_end_delays
from repro.core.percentile import class_delay_percentile
from repro.core.sla import SLA
from repro.exceptions import UnstableSystemError
from repro.workload.classes import Workload

__all__ = ["sla_feasibility"]


def sla_feasibility(
    cluster: ClusterModel, workload: Workload, sla: SLA
) -> tuple[bool, float]:
    """Evaluate one configuration against an SLA.

    Returns
    -------
    (feasible, score)
        ``score <= 0`` iff feasible; otherwise the summed relative
        violation over all mean and percentile guarantees (``1e6``-
        scaled when unstable).
    """
    bounds = sla.delay_bounds(workload)
    try:
        delays = end_to_end_delays(cluster, workload)
    except UnstableSystemError:
        rho = cluster.utilizations(workload.arrival_rates)
        return False, 1e6 * float(np.max(rho))
    score = float(np.maximum(delays / bounds - 1.0, 0.0).sum())
    for k, level, bound in sla.percentile_specs(workload):
        tail = class_delay_percentile(cluster, workload, k, level)
        score += max(tail / bound - 1.0, 0.0)
    return score <= 0.0, score
