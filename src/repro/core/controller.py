"""Dynamic (epoch-based) power management.

The paper's optimizers are static: one speed vector for one offered
load. In operation the load varies (diurnal cycles, bursts), and the
natural deployment of P2 is *model-predictive*: at the start of each
epoch, take the forecast per-class rates and re-solve the energy
minimization, holding the speeds for the epoch. Because DVFS
transitions are micro-seconds against epochs of minutes, the
quasi-static analysis — each epoch evaluated at its own steady state —
is the standard planning model.

:func:`plan_speed_schedule` builds the epoch-by-epoch plan;
:func:`evaluate_schedule` scores any plan (dynamic or static) on total
energy and SLA compliance; :func:`static_plan` produces the
fixed-speed comparison points (max speed, provisioned-for-peak,
provisioned-for-mean). Experiment F8 runs the comparison on a diurnal
load curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_energy import minimize_energy
from repro.exceptions import InfeasibleProblemError, ModelValidationError, UnstableSystemError
from repro.workload.classes import Workload, CustomerClass

__all__ = ["EpochPlan", "ScheduleReport", "plan_speed_schedule", "static_plan", "evaluate_schedule"]


@dataclass(frozen=True)
class EpochPlan:
    """One epoch of a speed schedule."""

    start: float
    duration: float
    rates: np.ndarray
    speeds: np.ndarray
    power: float
    mean_delay: float
    meets_bound: bool


@dataclass(frozen=True)
class ScheduleReport:
    """Aggregate score of a speed schedule over the whole horizon."""

    total_energy: float
    average_power: float
    compliance: float  # fraction of epochs meeting the delay bound
    worst_mean_delay: float

    @property
    def fully_compliant(self) -> bool:
        """Every epoch met the bound."""
        return self.compliance >= 1.0


def _validate_epochs(
    class_names: Sequence[str],
    epoch_starts: np.ndarray,
    epoch_rates: np.ndarray,
    horizon: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared epoch-grid validation for every schedule builder.

    Returns ``(starts, rates, ends)`` as float arrays; the last epoch
    ends at ``horizon``.
    """
    starts = np.asarray(epoch_starts, dtype=float)
    rates = np.asarray(epoch_rates, dtype=float)
    if starts.ndim != 1 or rates.shape != (starts.size, len(class_names)):
        raise ModelValidationError(
            f"epoch_rates must have shape ({starts.size}, {len(class_names)}), got {rates.shape}"
        )
    if np.any(np.diff(starts) <= 0.0):
        raise ModelValidationError("epoch starts must be strictly increasing")
    if horizon <= starts[-1]:
        raise ModelValidationError("horizon must exceed the last epoch start")
    return starts, rates, np.append(starts[1:], horizon)


def _workload_at(names: Sequence[str], rates: np.ndarray) -> Workload | None:
    """Workload for one epoch, or None if the epoch is (near) idle."""
    if np.all(rates <= 1e-12):
        return None
    # Zero-rate classes keep a vanishing rate so priorities line up.
    floor = max(float(rates.max()) * 1e-9, 1e-12)
    return Workload(
        [CustomerClass(n, max(float(r), floor)) for n, r in zip(names, rates)]
    )


def plan_speed_schedule(
    cluster: ClusterModel,
    class_names: Sequence[str],
    epoch_starts: np.ndarray,
    epoch_rates: np.ndarray,
    horizon: float,
    max_mean_delay: float,
    n_starts: int = 3,
    warm_start: bool = True,
) -> list[EpochPlan]:
    """Re-solve P2a each epoch against its forecast rates.

    Parameters
    ----------
    cluster:
        The configuration (counts fixed; speeds are the knob).
    class_names:
        Class labels, highest priority first.
    epoch_starts:
        Sorted epoch start times; the last epoch ends at ``horizon``.
    epoch_rates:
        ``(num_epochs, num_classes)`` forecast per-class rates.
    max_mean_delay:
        The aggregate SLA bound every epoch must respect.
    warm_start:
        Seed each epoch's P2a solve with the previous solved epoch's
        speeds (continuation along the load curve — adjacent epochs
        have adjacent optima, so the warm solve converges in a fraction
        of the cold multistart effort). The solver's acceptance guard
        falls back to the cold path whenever the hint is poor, so the
        schedule itself is unchanged.

    Epochs whose forecast load cannot meet the bound (or cannot even be
    stabilized) fall back to maximum speeds and are flagged
    non-compliant rather than aborting the schedule — a controller
    must keep running through overload.
    """
    starts, rates, ends = _validate_epochs(class_names, epoch_starts, epoch_rates, horizon)

    max_speeds = np.array([t.spec.max_speed for t in cluster.tiers])
    plans: list[EpochPlan] = []
    hint: np.ndarray | None = None
    for start, end, r in zip(starts, ends, rates):
        duration = float(end - start)
        workload = _workload_at(class_names, r)
        if workload is None:
            # Idle epoch: slowest speeds, zero traffic, idle power only.
            min_speeds = np.array([t.spec.min_speed for t in cluster.tiers])
            idle_power = float(
                sum(t.servers * t.spec.power.idle for t in cluster.tiers)
            )
            plans.append(
                EpochPlan(start, duration, r.copy(), min_speeds, idle_power, 0.0, True)
            )
            continue
        try:
            res = minimize_energy(
                cluster,
                workload,
                max_mean_delay=max_mean_delay,
                n_starts=n_starts,
                x0_hint=hint if warm_start else None,
            )
            chosen = res.meta["cluster"]
            speeds = res.x
            if warm_start:
                hint = np.array(res.x, copy=True)
        except (InfeasibleProblemError, UnstableSystemError):
            chosen = cluster.with_speeds(max_speeds)
            speeds = max_speeds
            # The continuation chain broke: the next epoch must not be
            # seeded from the pre-overload optimum (a stale hint from
            # the other side of the discontinuity).
            hint = None
        power = chosen.average_power(workload.arrival_rates)
        try:
            delay = mean_end_to_end_delay(chosen, workload)
            # Tolerance matches the SLSQP feasibility tolerance: the
            # optimum sits exactly on the constraint.
            ok = delay <= max_mean_delay * (1.0 + 1e-5) + 1e-9
        except UnstableSystemError:
            delay, ok = float("inf"), False
        plans.append(EpochPlan(start, duration, r.copy(), np.asarray(speeds), power, delay, ok))
    return plans


def static_plan(
    cluster: ClusterModel,
    class_names: Sequence[str],
    epoch_starts: np.ndarray,
    epoch_rates: np.ndarray,
    horizon: float,
    max_mean_delay: float,
    speeds: np.ndarray,
) -> list[EpochPlan]:
    """Evaluate one fixed speed vector across every epoch (the static
    baseline a dynamic controller is compared against)."""
    starts, rates, ends = _validate_epochs(class_names, epoch_starts, epoch_rates, horizon)
    fixed = cluster.with_speeds(speeds)
    plans = []
    for start, end, r in zip(starts, ends, rates):
        duration = float(end - start)
        workload = _workload_at(class_names, r)
        if workload is None:
            idle_power = float(sum(t.servers * t.spec.power.idle for t in cluster.tiers))
            plans.append(
                EpochPlan(start, duration, r.copy(), np.asarray(speeds), idle_power, 0.0, True)
            )
            continue
        power = fixed.average_power(workload.arrival_rates)
        try:
            delay = mean_end_to_end_delay(fixed, workload)
            ok = delay <= max_mean_delay * (1.0 + 1e-5) + 1e-9
        except UnstableSystemError:
            delay, ok = float("inf"), False
        plans.append(EpochPlan(start, duration, r.copy(), np.asarray(speeds), power, delay, ok))
    return plans


def evaluate_schedule(plans: Sequence[EpochPlan]) -> ScheduleReport:
    """Aggregate a plan into energy/compliance figures."""
    if len(plans) == 0:
        raise ModelValidationError("empty schedule")
    durations = np.array([p.duration for p in plans])
    powers = np.array([p.power for p in plans])
    delays = np.array([p.mean_delay for p in plans])
    ok = np.array([p.meets_bound for p in plans])
    total_energy = float(np.dot(durations, powers))
    return ScheduleReport(
        total_energy=total_energy,
        average_power=total_energy / float(durations.sum()),
        compliance=float(ok.mean()),
        worst_mean_delay=float(np.max(delays)),
    )
