"""Average energy consumption of multi-class priority clusters.

Abstract claim 1 (power half): "... and an average energy consumption
for multiple class customers". Three metrics, all derived from the
DVFS power model ``P_busy(s) = P_idle + κ s^α``:

* :func:`average_power` — mean cluster power draw (watts)

      P(s, c) = Σ_i [ c_i P_idle,i + R_i κ_i s_i^{α_i − 1} ],

  with ``R_i`` the tier's total work arrival rate. This is the P1
  budget quantity and the P2 objective: a power budget over a charging
  period *is* an energy budget.

* :func:`energy_per_request` — amortized energy per request,
  ``P / Λ`` (joules/request), i.e. the provider's energy bill divided
  over the customers served.

* :func:`per_class_energy_per_request` — class-resolved end-to-end
  energy: the *marginal* dynamic energy class k's own service burns,

      E_k^dyn = Σ_i v_{ik} κ_i s_i^{α_i − 1} E[D_{ik}],

  optionally plus a share of idle energy apportioned per request
  (``idle="equal"``) or in proportion to the class's work
  (``idle="work"``).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError
from repro.workload.classes import Workload

__all__ = [
    "average_power",
    "energy_per_request",
    "per_class_energy_per_request",
    "average_power_batch",
]

_IDLE_MODES = ("none", "equal", "work")


def _check(cluster: ClusterModel, workload: Workload) -> None:
    if cluster.num_classes != workload.num_classes:
        raise ModelValidationError(
            f"cluster is parameterized for {cluster.num_classes} classes "
            f"but workload has {workload.num_classes}"
        )


def average_power(cluster: ClusterModel, workload: Workload) -> float:
    """Mean cluster power draw, watts."""
    _check(cluster, workload)
    return cluster.average_power(workload.arrival_rates)


def energy_per_request(cluster: ClusterModel, workload: Workload) -> float:
    """Amortized energy per request: ``P / Λ`` (joules per request)."""
    return average_power(cluster, workload) / workload.total_rate


def per_class_energy_per_request(
    cluster: ClusterModel, workload: Workload, idle: str = "equal"
) -> np.ndarray:
    """Per-class average end-to-end energy per request (joules).

    Parameters
    ----------
    idle:
        How tier idle power is apportioned to classes:
        ``"none"``  — marginal dynamic energy only;
        ``"equal"`` — idle energy split equally over all requests;
        ``"work"``  — idle energy split in proportion to each class's
        share of the cluster's total work.

    Returns
    -------
    numpy.ndarray
        ``E_k`` per class, highest priority first. For any mode the
        identity ``Σ_k λ_k E_k = P − unattributed idle`` holds, with
        zero unattributed idle for the ``"equal"`` and ``"work"``
        modes (conservation checked by the property tests).
    """
    _check(cluster, workload)
    if idle not in _IDLE_MODES:
        raise ModelValidationError(f"idle mode must be one of {_IDLE_MODES}, got {idle!r}")
    lam = workload.arrival_rates
    dynamic = np.zeros(workload.num_classes)
    for i, tier in enumerate(cluster.tiers):
        e_per_work = tier.spec.power.dynamic_energy_per_work(tier.speed)
        demands = np.array([d.mean for d in tier.demands])
        dynamic += cluster.visit_ratios[:, i] * e_per_work * demands
    if idle == "none":
        return dynamic
    total_idle_power = float(sum(t.servers * t.spec.power.idle for t in cluster.tiers))
    if idle == "equal":
        return dynamic + total_idle_power / workload.total_rate
    # idle == "work": share by each class's work arrival rate.
    work_by_class = np.zeros(workload.num_classes)
    for i, tier in enumerate(cluster.tiers):
        demands = np.array([d.mean for d in tier.demands])
        work_by_class += cluster.visit_ratios[:, i] * lam * demands
    shares = work_by_class / work_by_class.sum()
    return dynamic + total_idle_power * shares / lam


def average_power_batch(
    cluster: ClusterModel,
    workload: Workload,
    speeds: np.ndarray,
    servers: np.ndarray | None = None,
) -> np.ndarray:
    """Mean cluster power for a whole ``(n, M)`` speed matrix at once.

    Vectorized counterpart of :func:`average_power`: element ``j`` of
    the returned ``(n,)`` array equals
    ``average_power(cluster.with_speeds(speeds[j]), workload)``.
    Power needs no stability, so every candidate gets a finite value.
    ``servers`` optionally varies per-candidate server counts. For
    repeated batches, hold a
    :class:`repro.core.batch_eval.BatchEvaluator` instead.
    """
    from repro.core.batch_eval import BatchEvaluator

    return BatchEvaluator(cluster, workload).average_power(speeds, servers)
