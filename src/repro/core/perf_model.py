"""Combined performance/energy facade over a cluster and workload.

:class:`ClusterPerformanceModel` is what the examples and optimizers
work with: one object holding the cluster configuration and workload,
answering every analytic question of abstract claim 1 and producing the
:class:`DelayEnergyReport` record the validation experiments compare
against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core import delay as delay_mod
from repro.core import energy as energy_mod
from repro.exceptions import ModelValidationError
from repro.workload.classes import Workload

__all__ = ["ClusterPerformanceModel", "DelayEnergyReport"]


@dataclass(frozen=True)
class DelayEnergyReport:
    """All analytic steady-state metrics of a configuration.

    Attributes
    ----------
    class_names:
        Class labels, highest priority first.
    delays:
        Per-class mean end-to-end delays ``T_k`` (seconds).
    mean_delay:
        Arrival-weighted average delay ``T̄``.
    energy_per_class:
        Per-class end-to-end energy per request (joules; idle
        apportioned equally).
    average_power:
        Mean cluster power (watts).
    energy_per_request:
        Amortized joules per request.
    utilizations:
        Per-tier utilization ``ρ_i``.
    """

    class_names: tuple[str, ...]
    delays: np.ndarray
    mean_delay: float
    energy_per_class: np.ndarray
    average_power: float
    energy_per_request: float
    utilizations: np.ndarray


class ClusterPerformanceModel:
    """Analytic model of one cluster configuration under one workload.

    Parameters
    ----------
    cluster:
        The cluster configuration.
    workload:
        The multi-class workload; must have the same number of classes
        the cluster is parameterized for.

    Examples
    --------
    See ``examples/quickstart.py`` for an end-to-end walkthrough.
    """

    def __init__(self, cluster: ClusterModel, workload: Workload):
        if cluster.num_classes != workload.num_classes:
            raise ModelValidationError(
                f"cluster is parameterized for {cluster.num_classes} classes "
                f"but workload has {workload.num_classes}"
            )
        self.cluster = cluster
        self.workload = workload

    # -- configuration transforms ---------------------------------------
    def with_speeds(self, speeds: Sequence[float]) -> "ClusterPerformanceModel":
        """New model with per-tier speeds replaced."""
        return ClusterPerformanceModel(self.cluster.with_speeds(speeds), self.workload)

    def with_servers(self, counts: Sequence[int]) -> "ClusterPerformanceModel":
        """New model with per-tier server counts replaced."""
        return ClusterPerformanceModel(self.cluster.with_servers(counts), self.workload)

    def with_workload(self, workload: Workload) -> "ClusterPerformanceModel":
        """New model with a different workload (e.g. a load-sweep point)."""
        return ClusterPerformanceModel(self.cluster, workload)

    # -- performance -----------------------------------------------------
    def delays(self) -> np.ndarray:
        """Per-class mean end-to-end delays ``T_k``."""
        return delay_mod.end_to_end_delays(self.cluster, self.workload)

    def mean_delay(self) -> float:
        """Arrival-weighted average end-to-end delay ``T̄``."""
        return delay_mod.mean_end_to_end_delay(self.cluster, self.workload)

    def per_tier_delays(self):
        """Per-tier, per-class delay decomposition."""
        return delay_mod.per_tier_delays(self.cluster, self.workload)

    def utilizations(self) -> np.ndarray:
        """Per-tier utilization ``ρ_i``."""
        return self.cluster.utilizations(self.workload.arrival_rates)

    def is_stable(self) -> bool:
        """True iff every tier is strictly below saturation."""
        return self.cluster.is_stable(self.workload.arrival_rates)

    # -- energy ------------------------------------------------------------
    def average_power(self) -> float:
        """Mean cluster power (watts)."""
        return energy_mod.average_power(self.cluster, self.workload)

    def energy_per_request(self) -> float:
        """Amortized joules per request."""
        return energy_mod.energy_per_request(self.cluster, self.workload)

    def per_class_energy(self, idle: str = "equal") -> np.ndarray:
        """Per-class end-to-end energy per request."""
        return energy_mod.per_class_energy_per_request(self.cluster, self.workload, idle=idle)

    # -- reporting ---------------------------------------------------------
    def report(self) -> DelayEnergyReport:
        """Evaluate everything once and bundle it."""
        delays = self.delays()
        lam = self.workload.arrival_rates
        return DelayEnergyReport(
            class_names=tuple(self.workload.names),
            delays=delays,
            mean_delay=float(np.dot(lam, delays) / lam.sum()),
            energy_per_class=self.per_class_energy(),
            average_power=self.average_power(),
            energy_per_request=self.energy_per_request(),
            utilizations=self.utilizations(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterPerformanceModel({self.cluster!r}, {self.workload!r})"
