"""The paper's primary contribution.

* ``delay``      — per-class average end-to-end delay of the priority
                   cluster (abstract claim 1, performance half).
* ``energy``     — average power / per-request energy (claim 1, power
                   half).
* ``perf_model`` — :class:`ClusterPerformanceModel`, the combined OO
                   facade over both.
* ``opt_delay``  — P1: minimize mean end-to-end delay subject to an
                   average power/energy budget (claim 2).
* ``opt_energy`` — P2a/P2b: minimize average power subject to an
                   aggregate or per-class delay bound (claim 3).
* ``opt_cost``   — P3: minimize provider cost subject to per-class
                   priority SLA guarantees (claim 4).
* ``sla``        — SLA contract objects used by P2b/P3.
"""

from repro.core.delay import end_to_end_delays, mean_end_to_end_delay, per_tier_delays
from repro.core.energy import (
    average_power,
    energy_per_request,
    per_class_energy_per_request,
)
from repro.core.feasibility import sla_feasibility
from repro.core.percentile import (
    all_class_percentiles,
    class_delay_percentile,
    class_delay_survival,
    hypoexponential_survival,
    mg1_sojourn_variance,
    mg1_wait_moments,
)
from repro.core.perf_model import ClusterPerformanceModel, DelayEnergyReport
from repro.core.sla import SLA, ClassSLA
from repro.core.opt_delay import minimize_delay
from repro.core.opt_energy import minimize_energy, minimize_energy_robust
from repro.core.opt_cost import CostAllocation, minimize_cost
from repro.core.opt_tco import TCOAllocation, minimize_tco
from repro.core.controller import (
    EpochPlan,
    ScheduleReport,
    evaluate_schedule,
    plan_speed_schedule,
    static_plan,
)
from repro.core.forecast import (
    blended_forecast,
    ewma_forecast,
    forecast_error,
    seasonal_naive_forecast,
)

__all__ = [
    "end_to_end_delays",
    "mean_end_to_end_delay",
    "per_tier_delays",
    "average_power",
    "energy_per_request",
    "per_class_energy_per_request",
    "ClusterPerformanceModel",
    "DelayEnergyReport",
    "SLA",
    "ClassSLA",
    "minimize_delay",
    "minimize_energy",
    "minimize_energy_robust",
    "CostAllocation",
    "minimize_cost",
    "TCOAllocation",
    "minimize_tco",
    "EpochPlan",
    "ScheduleReport",
    "plan_speed_schedule",
    "static_plan",
    "evaluate_schedule",
    "ewma_forecast",
    "seasonal_naive_forecast",
    "blended_forecast",
    "forecast_error",
    "sla_feasibility",
    "all_class_percentiles",
    "class_delay_percentile",
    "class_delay_survival",
    "hypoexponential_survival",
    "mg1_wait_moments",
    "mg1_sojourn_variance",
]
