"""Average end-to-end delay of multi-class priority clusters.

Abstract claim 1 (performance half): "a development of computing an
average end-to-end delay ... for multiple class customers". A class-k
request's end-to-end delay is its total sojourn across the tandem of
priority tiers:

    T_k(s, c) = Σ_i v_{ik} · T_{ik},

where ``T_{ik}`` comes from the sharpest applicable priority-queue
formula (see :func:`repro.queueing.networks.station_delays`) with
class-k service time ``D_{ik} / s_i`` at tier speed ``s_i``. The
aggregate objective used in P1/P2a is the arrival-weighted mean

    T̄ = Σ_k (λ_k / Λ) T_k.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError
from repro.queueing.networks import StationDelays
from repro.workload.classes import Workload

__all__ = ["end_to_end_delays", "mean_end_to_end_delay", "per_tier_delays"]


def _check(cluster: ClusterModel, workload: Workload) -> None:
    if cluster.num_classes != workload.num_classes:
        raise ModelValidationError(
            f"cluster is parameterized for {cluster.num_classes} classes "
            f"but workload has {workload.num_classes}"
        )


def end_to_end_delays(cluster: ClusterModel, workload: Workload) -> np.ndarray:
    """Per-class mean end-to-end delay ``T_k`` (highest priority first).

    Raises :class:`UnstableSystemError` if any tier is saturated.
    """
    _check(cluster, workload)
    return cluster.network().end_to_end_delays(workload.arrival_rates)


def mean_end_to_end_delay(cluster: ClusterModel, workload: Workload) -> float:
    """Arrival-weighted average end-to-end delay ``T̄`` over all classes."""
    _check(cluster, workload)
    return cluster.network().mean_delay(workload.arrival_rates)


def per_tier_delays(cluster: ClusterModel, workload: Workload) -> list[StationDelays]:
    """Per-tier, per-class delay decomposition (for reports and the
    validation experiments)."""
    _check(cluster, workload)
    return cluster.network().per_station_delays(workload.arrival_rates)
