"""Average end-to-end delay of multi-class priority clusters.

Abstract claim 1 (performance half): "a development of computing an
average end-to-end delay ... for multiple class customers". A class-k
request's end-to-end delay is its total sojourn across the tandem of
priority tiers:

    T_k(s, c) = Σ_i v_{ik} · T_{ik},

where ``T_{ik}`` comes from the sharpest applicable priority-queue
formula (see :func:`repro.queueing.networks.station_delays`) with
class-k service time ``D_{ik} / s_i`` at tier speed ``s_i``. The
aggregate objective used in P1/P2a is the arrival-weighted mean

    T̄ = Σ_k (λ_k / Λ) T_k.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError
from repro.queueing.networks import StationDelays
from repro.workload.classes import Workload

__all__ = [
    "end_to_end_delays",
    "mean_end_to_end_delay",
    "per_tier_delays",
    "end_to_end_delays_batch",
    "mean_end_to_end_delay_batch",
]


def _check(cluster: ClusterModel, workload: Workload) -> None:
    if cluster.num_classes != workload.num_classes:
        raise ModelValidationError(
            f"cluster is parameterized for {cluster.num_classes} classes "
            f"but workload has {workload.num_classes}"
        )


def end_to_end_delays(cluster: ClusterModel, workload: Workload) -> np.ndarray:
    """Per-class mean end-to-end delay ``T_k`` (highest priority first).

    Raises :class:`UnstableSystemError` if any tier is saturated.
    """
    _check(cluster, workload)
    return cluster.network().end_to_end_delays(workload.arrival_rates)


def mean_end_to_end_delay(cluster: ClusterModel, workload: Workload) -> float:
    """Arrival-weighted average end-to-end delay ``T̄`` over all classes."""
    _check(cluster, workload)
    return cluster.network().mean_delay(workload.arrival_rates)


def per_tier_delays(cluster: ClusterModel, workload: Workload) -> list[StationDelays]:
    """Per-tier, per-class delay decomposition (for reports and the
    validation experiments)."""
    _check(cluster, workload)
    return cluster.network().per_station_delays(workload.arrival_rates)


def end_to_end_delays_batch(
    cluster: ClusterModel,
    workload: Workload,
    speeds: np.ndarray,
    servers: np.ndarray | None = None,
) -> np.ndarray:
    """Per-class delays for a whole ``(n, M)`` speed matrix at once.

    Vectorized counterpart of :func:`end_to_end_delays`: row ``j`` of
    the returned ``(n, K)`` array equals
    ``end_to_end_delays(cluster.with_speeds(speeds[j]), workload)`` to
    floating-point round-off, except that unstable candidates yield
    ``inf`` rows instead of raising. ``servers`` optionally varies
    per-candidate server counts too (same shape as ``speeds``). For
    repeated batches against one cluster, build a
    :class:`repro.core.batch_eval.BatchEvaluator` directly — the
    speed-independent precompute is amortized across calls.
    """
    from repro.core.batch_eval import BatchEvaluator

    return BatchEvaluator(cluster, workload).end_to_end_delays(speeds, servers)


def mean_end_to_end_delay_batch(
    cluster: ClusterModel,
    workload: Workload,
    speeds: np.ndarray,
    servers: np.ndarray | None = None,
) -> np.ndarray:
    """Arrival-weighted mean delay per candidate, shape ``(n,)``
    (``inf`` for unstable candidates). See
    :func:`end_to_end_delays_batch`."""
    from repro.core.batch_eval import BatchEvaluator

    return BatchEvaluator(cluster, workload).mean_delay(speeds, servers)
