"""P1 — minimize average end-to-end delay under an energy budget.

Abstract claim 2: "optimizing the average end-to-end delay subject to
the constraint of an average energy consumption". The decision is the
vector of tier speeds ``s`` (server counts fixed); the program is

    minimize    T̄(s)                       (mean end-to-end delay)
    subject to  P(s) <= power_budget        (average power)
                s_i in [max(s_min_i, stability_i), s_max_i].

Delay is strictly decreasing and power strictly increasing in every
``s_i`` (for ``α > 1``), so the budget binds at any interior optimum —
the optimizer's job is to split the budget across tiers, and the
answer is non-obvious because tiers differ in load, variability and
power curves. Solved by multistart SLSQP; feasibility is certified
up front by evaluating the power at the slowest stable speeds.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.batch_eval import BatchEvaluator
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_common import DEFAULT_RHO_CAP, stability_speed_bounds
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.optimize.constrained import Constraint, minimize_box_constrained
from repro.optimize.result import OptimizationResult
from repro.workload.classes import Workload

__all__ = ["minimize_delay"]


def minimize_delay(
    cluster: ClusterModel,
    workload: Workload,
    power_budget: float,
    n_starts: int = 5,
    rho_cap: float = DEFAULT_RHO_CAP,
    x0_hint: np.ndarray | None = None,
) -> OptimizationResult:
    """Solve P1: choose tier speeds minimizing mean end-to-end delay
    within an average power budget.

    Parameters
    ----------
    cluster:
        Cluster configuration; server counts and disciplines are kept,
        current speeds are ignored (they only seed one start).
    workload:
        The offered multi-class workload.
    power_budget:
        Upper bound on average cluster power (watts). A bound on
        energy over a charging period divided by the period length is
        exactly this number.
    n_starts:
        Multistart seeds for SLSQP.
    rho_cap:
        Per-tier utilization cap folded into the speed bounds.
    x0_hint:
        Optional warm-start speeds (e.g. the optimum at a neighboring
        budget on a sweep); see
        :func:`repro.optimize.constrained.minimize_box_constrained`.

    Returns
    -------
    OptimizationResult
        ``x`` is the optimal speed vector; ``meta["cluster"]`` holds
        the re-configured :class:`ClusterModel` and
        ``meta["power"]`` the achieved average power.

    Raises
    ------
    InfeasibleProblemError
        If even the slowest stable speeds exceed the budget, or no
        stable speed assignment exists.
    """
    if power_budget <= 0.0 or not np.isfinite(power_budget):
        raise ModelValidationError(f"power budget must be positive and finite, got {power_budget}")
    bounds = stability_speed_bounds(cluster, workload, rho_cap)
    lam = workload.arrival_rates

    lo = np.array([b[0] for b in bounds])
    min_power = cluster.with_speeds(lo).average_power(lam)
    if min_power > power_budget:
        raise InfeasibleProblemError(
            f"power budget {power_budget:.6g} W is below the minimum stable power "
            f"{min_power:.6g} W (slowest stable speeds {np.round(lo, 4).tolist()})"
        )

    def objective(s: np.ndarray) -> float:
        return mean_end_to_end_delay(cluster.with_speeds(s), workload)

    def power_slack(s: np.ndarray) -> float:
        return power_budget - cluster.with_speeds(s).average_power(lam)

    # All multistart seeds are scored in one vectorized call (unstable
    # seeds come back inf, ranking them last).
    batch = BatchEvaluator(cluster, workload)

    def power_slack_batch(points: np.ndarray) -> np.ndarray:
        return power_budget - batch.average_power(points)

    result = minimize_box_constrained(
        objective,
        bounds,
        constraints=[Constraint(power_slack, name="power budget")],
        n_starts=n_starts,
        label="p1",
        objective_batch=batch.mean_delay,
        x0_hint=x0_hint,
        constraint_batch=power_slack_batch,
    )
    optimized = cluster.with_speeds(result.x)
    result.meta["cluster"] = optimized
    result.meta["power"] = optimized.average_power(lam)
    result.meta["power_budget"] = power_budget
    return result
