"""P2 — minimize average energy under end-to-end delay constraints.

Abstract claim 3: "optimizing the average end-to-end energy consumption
subject to the constraints of an average end-to-end delay for all class
and each class customer requests respectively". Two variants over tier
speeds ``s``:

P2a (aggregate):
    minimize  P(s)   subject to  T̄(s) <= max_mean_delay

P2b (per-class):
    minimize  P(s)   subject to  T_k(s) <= D_k  for every class k,

with the same stability-adjusted speed box as P1. P2b is the SLA-aware
variant: tight bounds on the high-priority classes cost extra energy
that an aggregate-only bound would not require — experiment F5
quantifies exactly that gap.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.batch_eval import BatchEvaluator
from repro.core.delay import end_to_end_delays, mean_end_to_end_delay
from repro.core.opt_common import DEFAULT_RHO_CAP, stability_speed_bounds
from repro.core.sla import SLA
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.optimize.constrained import Constraint, minimize_box_constrained
from repro.optimize.result import OptimizationResult
from repro.workload.classes import Workload

__all__ = ["minimize_energy", "minimize_energy_robust"]


def minimize_energy(
    cluster: ClusterModel,
    workload: Workload,
    max_mean_delay: float | None = None,
    class_delay_bounds: Sequence[float] | None = None,
    sla: SLA | None = None,
    n_starts: int = 5,
    rho_cap: float = DEFAULT_RHO_CAP,
    x0_hint: np.ndarray | None = None,
) -> OptimizationResult:
    """Solve P2: choose tier speeds minimizing average power subject to
    delay constraints.

    Exactly one constraint source must be given:

    * ``max_mean_delay`` — P2a, a bound on the aggregate mean delay;
    * ``class_delay_bounds`` — P2b, per-class bounds in priority order;
    * ``sla`` — P2b with bounds read from an :class:`SLA`.

    ``x0_hint`` optionally warm-starts the solve (e.g. from the optimum
    at a neighboring delay bound on a sweep); see
    :func:`repro.optimize.constrained.minimize_box_constrained`.

    Returns
    -------
    OptimizationResult
        ``x`` is the optimal speed vector; ``meta["cluster"]`` the
        reconfigured model, ``meta["delays"]`` the achieved per-class
        delays and ``meta["power"]`` the minimized average power.

    Raises
    ------
    InfeasibleProblemError
        If the bounds cannot be met even at maximum speeds, or no
        stable speed assignment exists.
    """
    sources = [max_mean_delay is not None, class_delay_bounds is not None, sla is not None]
    if sum(sources) != 1:
        raise ModelValidationError(
            "give exactly one of max_mean_delay, class_delay_bounds or sla"
        )
    if sla is not None:
        class_delay_bounds = sla.delay_bounds(workload)
    if class_delay_bounds is not None:
        bounds_arr = np.asarray(class_delay_bounds, dtype=float)
        if bounds_arr.shape != (workload.num_classes,):
            raise ModelValidationError(
                f"expected {workload.num_classes} class delay bounds, got shape {bounds_arr.shape}"
            )
        if np.any(bounds_arr <= 0.0):
            raise ModelValidationError(f"delay bounds must be positive, got {bounds_arr}")
    else:
        if max_mean_delay is None or max_mean_delay <= 0.0 or not np.isfinite(max_mean_delay):
            raise ModelValidationError(f"max_mean_delay must be positive and finite, got {max_mean_delay}")
        bounds_arr = None

    box = stability_speed_bounds(cluster, workload, rho_cap)
    lam = workload.arrival_rates
    hi = np.array([b[1] for b in box])
    fastest = cluster.with_speeds(hi)

    # Feasibility certificate at maximum speeds (delay decreasing in s).
    if bounds_arr is not None:
        best_delays = end_to_end_delays(fastest, workload)
        if np.any(best_delays > bounds_arr):
            worst = int(np.argmax(best_delays - bounds_arr))
            raise InfeasibleProblemError(
                f"class {workload.names[worst]!r} cannot meet its delay bound "
                f"{bounds_arr[worst]:.6g}s even at maximum speeds "
                f"(best achievable {best_delays[worst]:.6g}s)"
            )
    else:
        best_mean = mean_end_to_end_delay(fastest, workload)
        if best_mean > max_mean_delay:
            raise InfeasibleProblemError(
                f"aggregate delay bound {max_mean_delay:.6g}s is below the best achievable "
                f"mean delay {best_mean:.6g}s at maximum speeds"
            )

    def objective(s: np.ndarray) -> float:
        return cluster.with_speeds(s).average_power(lam)

    constraints: list[Constraint] = []
    if bounds_arr is not None:
        for k in range(workload.num_classes):
            def slack(s: np.ndarray, k: int = k) -> float:
                return bounds_arr[k] - end_to_end_delays(cluster.with_speeds(s), workload)[k]

            constraints.append(Constraint(slack, name=f"delay[{workload.names[k]}]"))
    else:
        def agg_slack(s: np.ndarray) -> float:
            return max_mean_delay - mean_end_to_end_delay(cluster.with_speeds(s), workload)

        constraints.append(Constraint(agg_slack, name="mean delay"))

    batch = BatchEvaluator(cluster, workload)

    if bounds_arr is not None:
        def slack_batch(points: np.ndarray) -> np.ndarray:
            return (bounds_arr[None, :] - batch.end_to_end_delays(points)).min(axis=1)
    else:
        def slack_batch(points: np.ndarray) -> np.ndarray:
            return max_mean_delay - batch.mean_delay(points)

    result = minimize_box_constrained(
        objective,
        box,
        constraints=constraints,
        n_starts=n_starts,
        label="p2b" if bounds_arr is not None else "p2a",
        objective_batch=batch.average_power,
        x0_hint=x0_hint,
        constraint_batch=slack_batch,
    )
    optimized = cluster.with_speeds(result.x)
    result.meta["cluster"] = optimized
    result.meta["delays"] = end_to_end_delays(optimized, workload)
    result.meta["power"] = optimized.average_power(lam)
    if bounds_arr is not None:
        result.meta["delay_bounds"] = bounds_arr
    else:
        result.meta["max_mean_delay"] = max_mean_delay
    return result


def minimize_energy_robust(
    cluster: ClusterModel,
    workload: Workload,
    rate_uncertainty: float,
    max_mean_delay: float | None = None,
    class_delay_bounds: Sequence[float] | None = None,
    sla: SLA | None = None,
    n_starts: int = 5,
    rho_cap: float = DEFAULT_RHO_CAP,
    x0_hint: np.ndarray | None = None,
) -> OptimizationResult:
    """P2 with rate uncertainty: guarantee the delay bounds for every
    arrival-rate vector up to ``(1 + rate_uncertainty)`` times the
    forecast.

    Forecasts are never exact; a provider that sizes speeds for the
    point forecast violates its SLA the moment traffic runs a few
    percent hot. Because every delay in the model is monotone
    increasing in every class's arrival rate, the worst case over the
    box ``λ_k ∈ [λ̂_k, λ̂_k (1 + ε)]`` is its top corner — so robust
    P2 is exactly nominal P2 against the inflated workload, with the
    returned power evaluated at the *forecast* rates (what the
    provider actually pays on average).

    Parameters
    ----------
    rate_uncertainty:
        Relative forecast error ``ε >= 0`` to be robust against.

    Returns
    -------
    OptimizationResult
        As :func:`minimize_energy`; ``meta["power"]`` is at forecast
        rates, ``meta["worst_case_delays"]`` at the inflated rates.
    """
    if rate_uncertainty < 0.0 or not np.isfinite(rate_uncertainty):
        raise ModelValidationError(
            f"rate uncertainty must be non-negative and finite, got {rate_uncertainty}"
        )
    inflated = workload.scaled(1.0 + rate_uncertainty)
    result = minimize_energy(
        cluster,
        inflated,
        max_mean_delay=max_mean_delay,
        class_delay_bounds=class_delay_bounds,
        sla=sla,
        n_starts=n_starts,
        rho_cap=rho_cap,
        x0_hint=x0_hint,
    )
    optimized = result.meta["cluster"]
    result.meta["worst_case_delays"] = result.meta.pop("delays")
    result.meta["delays"] = end_to_end_delays(optimized, workload)
    result.meta["power"] = optimized.average_power(workload.arrival_rates)
    result.meta["rate_uncertainty"] = rate_uncertainty
    return result
