"""Rate forecasting for the epoch controller.

The controller (:mod:`repro.core.controller`) consumes per-epoch rate
forecasts; this module supplies the two classical baselines a provider
would start from:

* :func:`ewma_forecast` — exponentially weighted moving average over
  the recent windows of the *same* day; reacts to trends, lags sharp
  ramps.
* :func:`seasonal_naive_forecast` — "tomorrow's 2 pm looks like
  today's (or last week's) 2 pm"; the dominant signal for diurnal
  loads, blind to day-over-day drift.
* :func:`blended_forecast` — the convex combination of the two, the
  standard practical compromise.

All operate on the ``(num_windows, num_classes)`` rate arrays produced
by :meth:`repro.workload.ArrivalTrace.windowed_rates`, and all support
a multiplicative safety margin — the knob that trades energy for
SLA compliance when forecasts run hot (cf. ``minimize_energy_robust``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = ["ewma_forecast", "seasonal_naive_forecast", "blended_forecast", "forecast_error"]


def _validate_history(history: np.ndarray) -> np.ndarray:
    h = np.asarray(history, dtype=float)
    if h.ndim != 2 or h.shape[0] == 0 or h.shape[1] == 0:
        raise ModelValidationError(
            f"history must be (num_windows, num_classes) with data, got shape {h.shape}"
        )
    if np.any(h < 0.0) or not np.all(np.isfinite(h)):
        raise ModelValidationError("history rates must be finite and non-negative")
    return h


def ewma_forecast(
    history: np.ndarray, alpha: float = 0.3, margin: float = 0.0
) -> np.ndarray:
    """One-step-ahead EWMA forecast per class.

    Parameters
    ----------
    history:
        Observed ``(num_windows, num_classes)`` rates, oldest first.
    alpha:
        Smoothing weight in ``(0, 1]`` — higher reacts faster.
    margin:
        Multiplicative safety margin ``>= 0`` applied to the forecast
        (``0.1`` sizes for 10% above the prediction).
    """
    h = _validate_history(history)
    if not 0.0 < alpha <= 1.0:
        raise ModelValidationError(f"alpha must be in (0, 1], got {alpha}")
    if margin < 0.0:
        raise ModelValidationError(f"margin must be non-negative, got {margin}")
    level = h[0].copy()
    for row in h[1:]:
        level = alpha * row + (1.0 - alpha) * level
    return level * (1.0 + margin)


def seasonal_naive_forecast(
    history: np.ndarray, period: int, margin: float = 0.0
) -> np.ndarray:
    """Full next-period forecast: repeat the last observed period.

    Returns ``(period, num_classes)`` — the rates one period ago,
    window by window.

    Raises
    ------
    ModelValidationError
        If fewer than ``period`` windows of history exist.
    """
    h = _validate_history(history)
    if period < 1:
        raise ModelValidationError(f"period must be >= 1, got {period}")
    if h.shape[0] < period:
        raise ModelValidationError(
            f"need at least {period} windows of history, have {h.shape[0]}"
        )
    if margin < 0.0:
        raise ModelValidationError(f"margin must be non-negative, got {margin}")
    return h[-period:] * (1.0 + margin)


def blended_forecast(
    history: np.ndarray,
    period: int,
    weight_seasonal: float = 0.7,
    alpha: float = 0.3,
    margin: float = 0.0,
) -> np.ndarray:
    """Convex blend of the seasonal-naive period forecast with the
    (flat) EWMA level: ``w · seasonal + (1 − w) · ewma`` per window.

    Returns ``(period, num_classes)``.
    """
    if not 0.0 <= weight_seasonal <= 1.0:
        raise ModelValidationError(
            f"weight_seasonal must be in [0, 1], got {weight_seasonal}"
        )
    if margin < 0.0:
        raise ModelValidationError(f"margin must be non-negative, got {margin}")
    seasonal = seasonal_naive_forecast(history, period)
    level = ewma_forecast(history, alpha=alpha)
    blend = weight_seasonal * seasonal + (1.0 - weight_seasonal) * level[None, :]
    return blend * (1.0 + margin)


def forecast_error(forecast: np.ndarray, actual: np.ndarray) -> float:
    """Symmetric mean absolute percentage error (sMAPE, in [0, 2]).

    The scale-free score used to compare forecasters on a trace.
    """
    f = np.asarray(forecast, dtype=float)
    a = np.asarray(actual, dtype=float)
    if f.shape != a.shape:
        raise ModelValidationError(f"shape mismatch: forecast {f.shape} vs actual {a.shape}")
    denom = np.abs(f) + np.abs(a)
    mask = denom > 1e-12
    if not mask.any():
        return 0.0
    return float(np.mean(2.0 * np.abs(f - a)[mask] / denom[mask]))
