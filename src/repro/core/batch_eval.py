"""Batched analytic evaluation of many cluster configurations at once.

The P1–P3 optimizers and the exhaustive certification baseline all
probe the *same* analytic model at many candidate configurations —
multistart seeds, speed grids, server-count grids. The scalar path
(:func:`repro.core.delay.end_to_end_delays` and friends) rebuilds a
:class:`~repro.cluster.model.ClusterModel` and a
:class:`~repro.queueing.networks.TandemNetwork` per candidate and
walks the per-station formulas in Python. This module evaluates an
``(n_candidates, n_tiers)`` speed matrix (optionally with per-candidate
server counts) in a handful of NumPy array operations per tier.

Two observations make this easy:

* Under the tandem decomposition each tier's delays depend only on its
  *own* speed and server count, so a batch factorizes into per-tier
  kernels vectorized over candidates.
* Every per-tier quantity separates into a **speed-independent** part
  (per-class arrival rates, demand moments, the aggregate SCV, the
  common exponential demand rate, the work arrival rate ``R_i``) that
  is precomputed once per :class:`BatchEvaluator`, and a trivial speed
  scaling: service means scale as ``1/s``, second moments as ``1/s²``.

The kernels mirror :func:`repro.queueing.networks.station_delays`
formula-for-formula (Pollaczek–Khinchine, Lee–Longton, Cobham,
Kella–Yechiali, Bondi–Buzen, exact M/G/1 preemptive-resume,
insensitive PS), including the dispatch rules, so batched values agree
with the scalar path to floating-point round-off. Candidates that are
unstable at any queueing tier (``ρ >= 1 - 1e-9``, the shared
``DEFAULT_RHO_MAX``) get ``inf`` delays instead of the scalar path's
:class:`UnstableSystemError` — a vector-friendly infeasibility signal
the optimizers translate to their penalty value.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.distributions.exponential import Exponential
from repro.exceptions import ModelValidationError
from repro.queueing.stability import DEFAULT_RHO_MAX
from repro.workload.classes import Workload

__all__ = ["BatchEvaluator", "erlang_b_vec", "erlang_c_vec"]


def erlang_b_vec(c: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Vectorized Erlang-B ``B(c_j, a_j)`` via the stable recurrence.

    Runs the scalar recurrence ``b = a b / (k + a b)`` to each
    candidate's own server count (candidates with ``c_j < k`` keep
    their converged value), so each element matches
    :func:`repro.queueing.mmc.erlang_b` exactly.
    """
    c = np.asarray(c, dtype=int)
    a = np.asarray(a, dtype=float)
    b = np.ones_like(a)
    for k in range(1, int(c.max()) + 1):
        ab = a * b
        b = np.where(k <= c, ab / (k + ab), b)
    return np.where(a == 0.0, np.where(c > 0, 0.0, 1.0), b)


def erlang_c_vec(c: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Vectorized Erlang-C ``C(c_j, a_j)`` (``inf``-safe: saturated
    candidates, ``a >= c``, return ``nan`` and are masked by callers)."""
    c = np.asarray(c, dtype=int)
    a = np.asarray(a, dtype=float)
    b = erlang_b_vec(c, a)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = c * b / (c - a * (1.0 - b))
    return np.where(a == 0.0, 0.0, out)


class _TierKernel:
    """Speed-independent per-tier data for the batch kernels."""

    __slots__ = (
        "discipline",
        "lam",
        "total",
        "dmean",
        "dm2",
        "agg_mean_d",
        "agg_m2_d",
        "scv",
        "common_mu_d",
        "idle",
        "kappa",
        "alpha",
        "servers",
        "work_rate",
    )

    def __init__(self, tier, lam_station: np.ndarray):
        self.discipline = tier.discipline
        self.lam = lam_station
        self.total = float(lam_station.sum())
        if self.total <= 0.0:
            raise ModelValidationError(
                f"tier {tier.name!r}: total arrival rate must be positive"
            )
        self.dmean = np.array([d.mean for d in tier.demands])
        self.dm2 = np.array([d.second_moment for d in tier.demands])
        probs = lam_station / self.total
        # Aggregate *demand* moments; at speed s the aggregate service
        # mean is agg_mean_d / s and the SCV is speed-invariant.
        self.agg_mean_d = float(np.dot(probs, self.dmean))
        self.agg_m2_d = float(np.dot(probs, self.dm2))
        self.scv = max(self.agg_m2_d / self.agg_mean_d**2 - 1.0, 0.0)
        # Common exponential demand rate (the Kella–Yechiali gate):
        # scaling by 1/s multiplies every rate by s, preserving the
        # relative-equality test the scalar dispatch applies.
        self.common_mu_d = self._common_rate(tier.demands)
        self.idle = tier.spec.power.idle
        self.kappa = tier.spec.power.kappa
        self.alpha = tier.spec.power.alpha
        self.servers = tier.servers
        self.work_rate = float(np.dot(lam_station, self.dmean))

    @staticmethod
    def _common_rate(demands) -> float | None:
        if not all(isinstance(d, Exponential) for d in demands):
            return None
        rates = [d.rate for d in demands]
        first = rates[0]
        if all(abs(r - first) <= 1e-12 * first for r in rates):
            return first
        return None


def _cobham_waits(lam: np.ndarray, m: np.ndarray, m2: np.ndarray):
    """Vectorized Cobham NP waits. ``m``/``m2`` are ``(n, K)`` service
    moments; returns ``(waits (n, K), sigma (n, K+1))``."""
    rho = lam[None, :] * m
    sigma = np.concatenate([np.zeros((m.shape[0], 1)), np.cumsum(rho, axis=1)], axis=1)
    w0 = 0.5 * (lam[None, :] * m2).sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        waits = w0[:, None] / ((1.0 - sigma[:, :-1]) * (1.0 - sigma[:, 1:]))
    return waits, sigma


def _pr_sojourns(lam: np.ndarray, m: np.ndarray, m2: np.ndarray) -> np.ndarray:
    """Vectorized exact preemptive-resume M/G/1 sojourns, ``(n, K)``."""
    rho = lam[None, :] * m
    sigma = np.concatenate([np.zeros((m.shape[0], 1)), np.cumsum(rho, axis=1)], axis=1)
    residual_cum = np.cumsum(0.5 * lam[None, :] * m2, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        return m / (1.0 - sigma[:, :-1]) + residual_cum / (
            (1.0 - sigma[:, :-1]) * (1.0 - sigma[:, 1:])
        )


class BatchEvaluator:
    """Evaluates the analytic model at many configurations in one call.

    Parameters
    ----------
    cluster:
        The template configuration — tier order, demands, disciplines,
        power curves and visit ratios are taken from it; speeds (and
        optionally server counts) are the batched decision variables.
    workload:
        The offered multi-class workload.

    Notes
    -----
    All methods accept ``speeds`` of shape ``(n, M)`` (or ``(M,)`` for
    a single candidate) and an optional integer ``servers`` of the same
    shape; server counts default to the template's. Unstable candidates
    yield ``inf`` delays (finite power — power needs no stability).
    """

    def __init__(self, cluster: ClusterModel, workload: Workload):
        if cluster.num_classes != workload.num_classes:
            raise ModelValidationError(
                f"cluster is parameterized for {cluster.num_classes} classes "
                f"but workload has {workload.num_classes}"
            )
        self.num_tiers = cluster.num_tiers
        self.num_classes = cluster.num_classes
        self.visit_ratios = cluster.visit_ratios
        lam = workload.arrival_rates
        self.arrival_rates = lam
        # Per-tier effective arrival rates λ_{ik} = v_{ik} λ_k.
        station_rates = cluster.visit_ratios * lam[:, None]  # (K, M)
        self.kernels = [
            _TierKernel(tier, station_rates[:, i]) for i, tier in enumerate(cluster.tiers)
        ]
        self.default_servers = cluster.server_counts
        disciplines = {k.discipline for k in self.kernels}
        unsupported = disciplines - {"fcfs", "priority_np", "priority_pr", "ps", "loss"}
        if unsupported:  # pragma: no cover - DISCIPLINES is the same set
            raise ModelValidationError(f"unsupported disciplines {unsupported}")

    # ------------------------------------------------------------------
    def _canon_inputs(self, speeds, servers):
        s = np.asarray(speeds, dtype=float)
        if s.ndim == 1:
            s = s[None, :]
        if s.ndim != 2 or s.shape[1] != self.num_tiers:
            raise ModelValidationError(
                f"speeds must have shape (n, {self.num_tiers}), got {np.shape(speeds)}"
            )
        if np.any(s <= 0.0) or not np.all(np.isfinite(s)):
            raise ModelValidationError("speeds must be positive and finite")
        if servers is None:
            c = np.broadcast_to(self.default_servers, s.shape)
        else:
            c = np.asarray(servers, dtype=int)
            if c.ndim == 1:
                c = c[None, :]
            c = np.broadcast_to(c, s.shape)
            if np.any(c < 1):
                raise ModelValidationError("server counts must be >= 1")
        return s, c

    # ------------------------------------------------------------------
    def _tier_sojourns(self, tk: _TierKernel, s: np.ndarray, c: np.ndarray):
        """Per-class sojourns ``(n, K)`` and instability mask ``(n,)``
        of one tier at candidate speeds ``s`` and counts ``c``."""
        n = s.shape[0]
        m = tk.dmean[None, :] / s[:, None]  # (n, K) service means
        if tk.discipline == "loss":
            return m.copy(), np.zeros(n, dtype=bool)

        rho_tier = tk.total * tk.agg_mean_d / (s * c)
        unstable = rho_tier >= DEFAULT_RHO_MAX
        agg_mean = tk.agg_mean_d / s
        a = tk.total * agg_mean  # offered load for Erlang formulas

        if tk.discipline == "fcfs":
            wq = np.empty(n)
            single = c == 1
            with np.errstate(divide="ignore", invalid="ignore"):
                # Pollaczek–Khinchine (exact two-moment fit).
                wq1 = 0.5 * tk.total * (tk.agg_m2_d / s**2) / (1.0 - rho_tier)
                # Lee–Longton (1 + scv)/2 × M/M/c wait.
                wqc = (
                    0.5
                    * (1.0 + tk.scv)
                    * erlang_c_vec(c, a)
                    / (c / agg_mean - tk.total)
                )
            wq = np.where(single, wq1, wqc)
            sojourns = wq[:, None] + m
            return sojourns, unstable

        if tk.discipline == "ps":
            with np.errstate(divide="ignore", invalid="ignore"):
                stretch1 = 1.0 / (1.0 - rho_tier)
                stretchc = 1.0 + erlang_c_vec(c, a) / (c * (1.0 - rho_tier))
            stretch = np.where(c == 1, stretch1, stretchc)
            return m * stretch[:, None], unstable

        m2 = tk.dm2[None, :] / s[:, None] ** 2

        if tk.discipline == "priority_np":
            single = c == 1
            sojourns = np.empty((n, self.num_classes))
            if np.any(single):
                waits, _ = _cobham_waits(tk.lam, m[single], m2[single])
                sojourns[single] = waits + m[single]
            multi = ~single
            if np.any(multi):
                sojourns[multi] = self._np_multi_sojourns(
                    tk, s[multi], c[multi], m[multi], m2[multi], agg_mean[multi], a[multi]
                )
            return sojourns, unstable

        # preemptive-resume
        single = c == 1
        sojourns = np.empty((n, self.num_classes))
        if np.any(single):
            sojourns[single] = _pr_sojourns(tk.lam, m[single], m2[single])
        multi = ~single
        if np.any(multi):
            mm, mm2 = m[multi], m2[multi]
            cc = c[multi].astype(float)[:, None]
            pr_fast = _pr_sojourns(tk.lam, mm / cc, mm2 / cc**2)
            pw_fast_waits = pr_fast - mm / cc
            np_fast_waits, _ = _cobham_waits(tk.lam, mm / cc, mm2 / cc**2)
            np_multi_waits = self._np_multi_sojourns(
                tk, s[multi], c[multi], mm, mm2, agg_mean[multi], a[multi]
            ) - mm
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(
                    np_fast_waits > 0.0, np_multi_waits / np_fast_waits, 1.0
                )
            sojourns[multi] = pw_fast_waits * ratios + mm
        return sojourns, unstable

    def _np_multi_sojourns(self, tk, s, c, m, m2, agg_mean, a):
        """Multi-server non-preemptive priority sojourns ``(n', K)`` —
        Kella–Yechiali when the tier has a common exponential demand,
        Bondi–Buzen scaling otherwise (mirroring the scalar dispatch)."""
        if tk.common_mu_d is not None:
            mu = tk.common_mu_d * s  # common service rate at speed s
            rho = tk.lam[None, :] / (c * mu)[:, None]
            sigma = np.concatenate(
                [np.zeros((s.shape[0], 1)), np.cumsum(rho, axis=1)], axis=1
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                w0 = erlang_c_vec(c, tk.total / mu) / (c * mu)
                waits = w0[:, None] / ((1.0 - sigma[:, :-1]) * (1.0 - sigma[:, 1:]))
            return waits + (1.0 / mu)[:, None]
        # Bondi–Buzen: fast-server Cobham waits × FCFS multi/fast ratio.
        cc = c.astype(float)[:, None]
        fast_waits, _ = _cobham_waits(tk.lam, m / cc, m2 / cc**2)
        rho = tk.total * agg_mean / c
        with np.errstate(divide="ignore", invalid="ignore"):
            w_multi = (
                0.5 * (1.0 + tk.scv) * erlang_c_vec(c, a) / (c / agg_mean - tk.total)
            )
            w_fast = 0.5 * tk.total * (tk.agg_m2_d / s**2) / c**2 / (1.0 - rho)
            ratio = np.where(w_fast > 0.0, w_multi / w_fast, 1.0)
        return fast_waits * ratio[:, None] + m

    # ------------------------------------------------------------------
    def per_tier_sojourns(self, speeds, servers=None) -> np.ndarray:
        """Per-candidate, per-tier, per-class mean sojourns,
        shape ``(n, M, K)`` (``inf`` rows for unstable candidates)."""
        s, c = self._canon_inputs(speeds, servers)
        n = s.shape[0]
        out = np.empty((n, self.num_tiers, self.num_classes))
        bad = np.zeros(n, dtype=bool)
        for i, tk in enumerate(self.kernels):
            sojourns, unstable = self._tier_sojourns(tk, s[:, i], c[:, i])
            out[:, i, :] = sojourns
            bad |= unstable
        out[bad] = np.inf
        return out

    def end_to_end_delays(self, speeds, servers=None) -> np.ndarray:
        """Per-class end-to-end delays ``T_k = Σ_i v_{ik} T_{ik}``,
        shape ``(n, K)``; ``inf`` for unstable candidates."""
        sojourns = self.per_tier_sojourns(speeds, servers)  # (n, M, K)
        # visit_ratios is (K, M): weight tier sojourns per class.
        return np.einsum("km,nmk->nk", self.visit_ratios, sojourns)

    def mean_delay(self, speeds, servers=None) -> np.ndarray:
        """Arrival-weighted mean end-to-end delay per candidate,
        shape ``(n,)``."""
        t = self.end_to_end_delays(speeds, servers)
        lam = self.arrival_rates
        return t @ lam / lam.sum()

    def average_power(self, speeds, servers=None) -> np.ndarray:
        """Mean cluster power per candidate, shape ``(n,)``:
        ``Σ_i [c_i P_idle,i + R_i κ_i s_i^{α_i − 1}]`` — the work
        arrival rates ``R_i`` are configuration-independent, so power
        is a closed form in the decision variables."""
        s, c = self._canon_inputs(speeds, servers)
        idle = np.array([tk.idle for tk in self.kernels])
        kappa = np.array([tk.kappa for tk in self.kernels])
        alpha = np.array([tk.alpha for tk in self.kernels])
        work = np.array([tk.work_rate for tk in self.kernels])
        return (c * idle[None, :]).sum(axis=1) + (
            work[None, :] * kappa[None, :] * s ** (alpha[None, :] - 1.0)
        ).sum(axis=1)
