"""Stability checks shared by every analytic formula.

All mean-value formulas in this package are only valid strictly inside
the stability region ``ρ < 1``. Rather than returning infinities or
negative values, the library raises :class:`UnstableSystemError` with
the offending utilization — optimizers treat that as an infeasibility
signal and simulation refuses to run divergent configurations unless
explicitly told to.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ModelValidationError, UnstableSystemError

__all__ = ["check_stability", "total_utilization", "require_positive_rate"]

# Utilizations above this are treated as unstable even though formally
# rho < 1: mean waits blow up as 1/(1-rho) and both analytic round-off
# and finite-horizon simulation become meaningless well before 1.0.
DEFAULT_RHO_MAX = 1.0 - 1e-9


def require_positive_rate(rate: float, name: str = "rate") -> float:
    """Validate that a rate parameter is positive and finite."""
    if not (rate > 0.0) or rate != rate or rate == float("inf"):
        raise ModelValidationError(f"{name} must be positive and finite, got {rate}")
    return float(rate)


def total_utilization(arrival_rates: Sequence[float], mean_services: Sequence[float], servers: int = 1) -> float:
    """Total offered utilization ``ρ = Σ_k λ_k E[S_k] / c``.

    Parameters
    ----------
    arrival_rates:
        Per-class arrival rates ``λ_k >= 0``.
    mean_services:
        Per-class mean service times ``E[S_k] > 0`` at this station.
    servers:
        Number of servers ``c >= 1``.
    """
    if len(arrival_rates) != len(mean_services):
        raise ModelValidationError(
            f"got {len(arrival_rates)} arrival rates but {len(mean_services)} mean services"
        )
    if servers < 1:
        raise ModelValidationError(f"server count must be >= 1, got {servers}")
    rho = 0.0
    for lam, es in zip(arrival_rates, mean_services):
        if lam < 0.0:
            raise ModelValidationError(f"arrival rates must be non-negative, got {lam}")
        if es <= 0.0:
            raise ModelValidationError(f"mean service times must be positive, got {es}")
        rho += lam * es
    return rho / servers


def check_stability(rho: float, *, where: str = "station", rho_max: float = DEFAULT_RHO_MAX) -> float:
    """Raise :class:`UnstableSystemError` unless ``0 <= rho < rho_max``.

    Returns ``rho`` unchanged so callers can chain it.
    """
    if rho < 0.0:
        raise ModelValidationError(f"negative utilization {rho} at {where}")
    if rho >= rho_max:
        raise UnstableSystemError(
            f"{where} is unstable: utilization {rho:.6g} >= {rho_max:.6g}", utilization=rho
        )
    return rho
