"""Open tandem networks of multi-class priority stations.

The cluster delay model: class-``k`` requests arrive Poisson at rate
``λ_k`` and traverse stations ``1..M`` in order (optionally with
per-class visit ratios ``v_{ik}`` — the mean number of visits a class-k
request pays to station ``i``, modeling e.g. repeated database
round-trips). The per-class **end-to-end delay** is

    T_k = Σ_i v_{ik} · T_{ik},

with ``T_{ik}`` the class-``k`` mean sojourn at station ``i`` from the
appropriate queueing formula.

Decomposition assumption: each station sees Poisson arrivals at rate
``v_{ik} λ_k`` per class. For FCFS exponential stations this is exact
(Burke's theorem); under priority scheduling departures are not Poisson
and the decomposition is an approximation — precisely the approximation
the paper validates by simulation, reproduced in experiment T1.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.exponential import Exponential
from repro.exceptions import ModelValidationError
from repro.queueing.mg1 import MG1
from repro.queueing.mgc import MGc
from repro.queueing.priority import (
    ClassLoad,
    nonpreemptive_priority_mg1,
    preemptive_resume_priority_mg1,
)
from repro.queueing.priority_multiserver import (
    bondi_buzen_priority_waits,
    nonpreemptive_priority_mmc_common_mu,
)
from repro.queueing.stability import check_stability

__all__ = ["StationSpec", "StationDelays", "TandemNetwork", "DISCIPLINES"]

DISCIPLINES = ("fcfs", "priority_np", "priority_pr", "ps", "loss")


@dataclass(frozen=True)
class StationSpec:
    """One station (tier) of the tandem network.

    Attributes
    ----------
    services:
        Per-class service-time distributions at this station, highest
        priority first — already at the station's actual speed.
    servers:
        Number of identical parallel servers.
    discipline:
        ``"fcfs"``, ``"priority_np"`` (non-preemptive head-of-line),
        ``"priority_pr"`` (preemptive-resume) or ``"ps"`` (egalitarian
        processor sharing).
    name:
        Optional label used in reports.
    """

    services: tuple[Distribution, ...]
    servers: int = 1
    discipline: str = "priority_np"
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.services) == 0:
            raise ModelValidationError("station needs at least one class service distribution")
        if not all(isinstance(s, Distribution) for s in self.services):
            raise ModelValidationError("services must be Distribution instances")
        if self.servers < 1 or int(self.servers) != self.servers:
            raise ModelValidationError(f"server count must be a positive integer, got {self.servers}")
        if self.discipline not in DISCIPLINES:
            raise ModelValidationError(
                f"unknown discipline {self.discipline!r}; expected one of {DISCIPLINES}"
            )

    @property
    def num_classes(self) -> int:
        """Number of customer classes the station is parameterized for."""
        return len(self.services)


@dataclass(frozen=True)
class StationDelays:
    """Per-class delay decomposition at one station."""

    name: str
    mean_waits: np.ndarray
    mean_sojourns: np.ndarray
    utilization: float


def _common_exponential_rate(services: Sequence[Distribution]) -> float | None:
    """Return the shared rate if all services are Exponential with equal
    rates (within 1e-12 relative), else None."""
    if not all(isinstance(s, Exponential) for s in services):
        return None
    rates = [s.rate for s in services]  # type: ignore[attr-defined]
    first = rates[0]
    if all(abs(r - first) <= 1e-12 * first for r in rates):
        return first
    return None


def station_delays(spec: StationSpec, arrival_rates: Sequence[float]) -> StationDelays:
    """Per-class mean waits and sojourns at a single station.

    Dispatches to the sharpest available formula:

    * FCFS: aggregate M/G/1 (exact) or M/G/c (Lee–Longton).
    * Non-preemptive priority, 1 server: Cobham (exact).
    * Non-preemptive priority, c servers, identical exponential
      service: Kella–Yechiali (exact).
    * Non-preemptive priority, c servers, general service:
      Bondi–Buzen scaling (approximation).
    * Preemptive-resume, 1 server: exact M/G/1 PR formula.
    * Preemptive-resume, c servers: Bondi–Buzen scaling of the PR
      single-fast-server waits.
    * Processor sharing: exact insensitive M/G/1-PS sojourns (``c = 1``)
      or the standard insensitive multi-server approximation.
    """
    lam = np.asarray(arrival_rates, dtype=float)
    if lam.ndim != 1 or lam.size != spec.num_classes:
        raise ModelValidationError(
            f"expected {spec.num_classes} arrival rates, got shape {lam.shape}"
        )
    if np.any(lam < 0.0):
        raise ModelValidationError(f"arrival rates must be non-negative, got {lam}")
    total = float(lam.sum())
    if total <= 0.0:
        raise ModelValidationError("total arrival rate at a station must be positive")
    services = spec.services
    c = spec.servers

    if spec.discipline == "fcfs":
        probs = lam / total
        agg_mean = float(np.dot(probs, [s.mean for s in services]))
        agg_m2 = float(np.dot(probs, [s.second_moment for s in services]))
        scv = max(agg_m2 / agg_mean**2 - 1.0, 0.0)
        from repro.distributions.fitting import fit_two_moments

        agg = fit_two_moments(agg_mean, scv)
        wq = MG1(total, agg).mean_wait if c == 1 else MGc(total, agg, c).mean_wait
        waits = np.full(lam.size, wq)
        sojourns = waits + np.array([s.mean for s in services])
        rho = total * agg_mean / c
        return StationDelays(spec.name, waits, sojourns, rho)

    if spec.discipline == "loss":
        # M/G/c/c: accepted requests never wait; blocking is the
        # station's defining metric and lives on repro.queueing.loss
        # (the tandem delay model only describes *accepted* flow).
        means = np.array([s.mean for s in services])
        a = float(np.dot(lam, means))
        from repro.queueing.mmc import erlang_b

        b = erlang_b(c, a)
        rho = a * (1.0 - b) / c
        return StationDelays(spec.name, np.zeros(lam.size), means, rho)

    if spec.discipline == "ps":
        from repro.queueing.ps import ps_sojourn_times

        sojourns = ps_sojourn_times(lam, services, c)
        means = np.array([s.mean for s in services])
        rho = float(np.dot(lam, means)) / c
        return StationDelays(spec.name, sojourns - means, sojourns, rho)

    loads = [ClassLoad(l, s) for l, s in zip(lam, services)]

    if spec.discipline == "priority_np":
        if c == 1:
            pw = nonpreemptive_priority_mg1(loads)
        else:
            mu = _common_exponential_rate(services)
            if mu is not None:
                pw = nonpreemptive_priority_mmc_common_mu(lam, mu, c)
            else:
                pw = bondi_buzen_priority_waits(loads, c)
        return StationDelays(spec.name, pw.mean_waits, pw.mean_sojourns, pw.total_utilization)

    # preemptive-resume
    if c == 1:
        pw = preemptive_resume_priority_mg1(loads)
        return StationDelays(spec.name, pw.mean_waits, pw.mean_sojourns, pw.total_utilization)
    # Multi-server PR: Bondi-Buzen scaling applied to the PR fast-server waits.
    fast = [ClassLoad(l.arrival_rate, l.service.scaled(1.0 / c)) for l in loads]
    pw_fast = preemptive_resume_priority_mg1(fast)
    np_fast = nonpreemptive_priority_mg1(fast)
    np_multi = bondi_buzen_priority_waits(loads, c)
    # Scale each class's PR fast wait by the NP multi/fast ratio.
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(np_fast.mean_waits > 0.0, np_multi.mean_waits / np_fast.mean_waits, 1.0)
    waits = pw_fast.mean_waits * ratios
    services_mean = np.array([s.mean for s in services])
    return StationDelays(spec.name, waits, waits + services_mean, np_multi.total_utilization)


class TandemNetwork:
    """A tandem of priority stations with per-class visit ratios.

    Parameters
    ----------
    stations:
        Ordered station specs; all must declare the same number of
        classes.
    visit_ratios:
        Optional ``(num_classes, num_stations)`` array of mean visit
        counts; defaults to all-ones (pure tandem).
    """

    def __init__(
        self,
        stations: Sequence[StationSpec],
        visit_ratios: np.ndarray | None = None,
    ):
        if len(stations) == 0:
            raise ModelValidationError("network needs at least one station")
        k = stations[0].num_classes
        if any(s.num_classes != k for s in stations):
            raise ModelValidationError("all stations must declare the same number of classes")
        self.stations = list(stations)
        self.num_classes = k
        self.num_stations = len(stations)
        if visit_ratios is None:
            visit_ratios = np.ones((k, self.num_stations))
        visit_ratios = np.asarray(visit_ratios, dtype=float)
        if visit_ratios.shape != (k, self.num_stations):
            raise ModelValidationError(
                f"visit_ratios must have shape ({k}, {self.num_stations}), got {visit_ratios.shape}"
            )
        if np.any(visit_ratios < 0.0):
            raise ModelValidationError("visit ratios must be non-negative")
        if np.any(visit_ratios.sum(axis=1) <= 0.0):
            raise ModelValidationError("every class must visit at least one station")
        self.visit_ratios = visit_ratios

    def station_arrival_rates(self, arrival_rates: Sequence[float]) -> np.ndarray:
        """Effective per-class arrival rate at each station:
        ``λ_{ik} = v_{ik} λ_k``. Shape ``(num_classes, num_stations)``.
        """
        lam = np.asarray(arrival_rates, dtype=float)
        if lam.shape != (self.num_classes,):
            raise ModelValidationError(
                f"expected {self.num_classes} arrival rates, got shape {lam.shape}"
            )
        return self.visit_ratios * lam[:, None]

    def utilizations(self, arrival_rates: Sequence[float]) -> np.ndarray:
        """Total utilization of each station (len ``num_stations``)."""
        rates = self.station_arrival_rates(arrival_rates)
        out = np.empty(self.num_stations)
        for i, spec in enumerate(self.stations):
            means = np.array([s.mean for s in spec.services])
            out[i] = float(np.dot(rates[:, i], means)) / spec.servers
        return out

    def is_stable(self, arrival_rates: Sequence[float]) -> bool:
        """True iff every *queueing* station's utilization is strictly
        below 1 (loss stations have no queue to grow)."""
        rho = self.utilizations(arrival_rates)
        queueing = np.array([s.discipline != "loss" for s in self.stations])
        return bool(np.all(rho[queueing] < 1.0))

    def per_station_delays(self, arrival_rates: Sequence[float]) -> list[StationDelays]:
        """Per-class delay decomposition at every station.

        Raises :class:`UnstableSystemError` at the first saturated
        station.
        """
        rates = self.station_arrival_rates(arrival_rates)
        out = []
        for i, spec in enumerate(self.stations):
            if spec.discipline != "loss":  # loss stations cannot saturate
                check_stability(
                    float(np.dot(rates[:, i], [s.mean for s in spec.services])) / spec.servers,
                    where=spec.name or f"station {i}",
                )
            out.append(station_delays(spec, rates[:, i]))
        return out

    def end_to_end_delays(self, arrival_rates: Sequence[float]) -> np.ndarray:
        """Per-class mean end-to-end delay ``T_k = Σ_i v_{ik} T_{ik}``."""
        per_station = self.per_station_delays(arrival_rates)
        sojourns = np.stack([d.mean_sojourns for d in per_station], axis=1)  # (K, M)
        return (self.visit_ratios * sojourns).sum(axis=1)

    def mean_delay(self, arrival_rates: Sequence[float]) -> float:
        """Arrival-weighted average end-to-end delay over all classes —
        the objective of problem P1 and the aggregate constraint of
        P2a."""
        lam = np.asarray(arrival_rates, dtype=float)
        t = self.end_to_end_delays(arrival_rates)
        return float(np.dot(lam, t) / lam.sum())
