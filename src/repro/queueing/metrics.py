"""Shared metric containers and Little's-law helpers."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QueueMetrics", "little_l", "little_lq"]


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state mean metrics of a single queueing station.

    Attributes
    ----------
    arrival_rate:
        Offered arrival rate ``λ``.
    utilization:
        Server utilization ``ρ`` (per-server for multi-server stations).
    mean_wait:
        Mean time in *queue* (excluding service), ``W_q``.
    mean_sojourn:
        Mean time in *system* (queue + service), ``W = W_q + E[S]``.
    mean_queue_length:
        Mean number waiting, ``L_q = λ W_q`` (Little).
    mean_number_in_system:
        Mean number in system, ``L = λ W`` (Little).
    """

    arrival_rate: float
    utilization: float
    mean_wait: float
    mean_sojourn: float
    mean_queue_length: float
    mean_number_in_system: float

    @classmethod
    def from_waits(cls, arrival_rate: float, utilization: float, mean_wait: float, mean_service: float) -> "QueueMetrics":
        """Build a full metric set from ``(λ, ρ, W_q, E[S])`` via Little's law."""
        sojourn = mean_wait + mean_service
        return cls(
            arrival_rate=arrival_rate,
            utilization=utilization,
            mean_wait=mean_wait,
            mean_sojourn=sojourn,
            mean_queue_length=arrival_rate * mean_wait,
            mean_number_in_system=arrival_rate * sojourn,
        )


def little_l(arrival_rate: float, mean_sojourn: float) -> float:
    """Little's law for the system: ``L = λ W``."""
    return arrival_rate * mean_sojourn


def little_lq(arrival_rate: float, mean_wait: float) -> float:
    """Little's law for the queue: ``L_q = λ W_q``."""
    return arrival_rate * mean_wait
