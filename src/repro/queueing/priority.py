"""Multi-class M/G/1 priority queues — the paper's per-tier delay model.

Class 1 is the highest priority. Two disciplines:

**Non-preemptive (head-of-line)** — Cobham (1954). A job in service is
never interrupted; at each completion the server takes the head of the
highest non-empty priority queue. Mean wait of class ``k``:

    W_k = W_0 / ((1 - σ_{k-1}) (1 - σ_k)),
    W_0 = Σ_j λ_j E[S_j²] / 2,   σ_k = Σ_{j<=k} ρ_j,  σ_0 = 0.

Every class's wait — including the top class — includes the residual
``W_0`` of whatever job is in service, lower-priority work included.

**Preemptive-resume** — higher classes interrupt lower ones, service
resumes where it stopped. Mean *sojourn* of class ``k``:

    T_k = E[S_k] / (1 - σ_{k-1})
        + (Σ_{j<=k} λ_j E[S_j²] / 2) / ((1 - σ_{k-1}) (1 - σ_k)).

Lower classes are invisible to class ``k`` under preemption, so the
residual sum stops at ``k``.

Both formulas are exact for M/G/1; the simulator reproduces them to
statistical accuracy in the validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError
from repro.queueing.stability import check_stability

__all__ = [
    "ClassLoad",
    "PriorityWaits",
    "nonpreemptive_priority_mg1",
    "preemptive_resume_priority_mg1",
]


@dataclass(frozen=True)
class ClassLoad:
    """Per-class offered load at one station.

    Attributes
    ----------
    arrival_rate:
        Poisson arrival rate ``λ_k`` of the class at this station.
    service:
        Service-time distribution ``S_k`` at this station (already at
        the station's actual speed).
    """

    arrival_rate: float
    service: Distribution

    def __post_init__(self) -> None:
        if self.arrival_rate < 0.0 or not np.isfinite(self.arrival_rate):
            raise ModelValidationError(
                f"class arrival rate must be non-negative and finite, got {self.arrival_rate}"
            )
        if not isinstance(self.service, Distribution):
            raise ModelValidationError(f"service must be a Distribution, got {type(self.service).__name__}")

    @property
    def utilization(self) -> float:
        """``ρ_k = λ_k E[S_k]``."""
        return self.arrival_rate * self.service.mean

    @property
    def residual(self) -> float:
        """Residual-work contribution ``λ_k E[S_k²] / 2``."""
        return 0.5 * self.arrival_rate * self.service.second_moment


@dataclass(frozen=True)
class PriorityWaits:
    """Per-class mean waits/sojourns at a priority station.

    Arrays are indexed by class (0 = highest priority).
    """

    mean_waits: np.ndarray
    mean_sojourns: np.ndarray
    utilizations: np.ndarray
    total_utilization: float

    def aggregate_wait(self, arrival_rates: Sequence[float]) -> float:
        """Arrival-rate-weighted mean wait over classes."""
        lam = np.asarray(arrival_rates, dtype=float)
        return float(np.dot(lam, self.mean_waits) / lam.sum())

    def aggregate_sojourn(self, arrival_rates: Sequence[float]) -> float:
        """Arrival-rate-weighted mean sojourn over classes."""
        lam = np.asarray(arrival_rates, dtype=float)
        return float(np.dot(lam, self.mean_sojourns) / lam.sum())


def _validate_classes(classes: Sequence[ClassLoad]) -> None:
    if len(classes) == 0:
        raise ModelValidationError("need at least one customer class")
    if not all(isinstance(c, ClassLoad) for c in classes):
        raise ModelValidationError("classes must be ClassLoad instances")


def nonpreemptive_priority_mg1(classes: Sequence[ClassLoad]) -> PriorityWaits:
    """Cobham's exact non-preemptive M/G/1 priority waits.

    Parameters
    ----------
    classes:
        Per-class loads, highest priority first.

    Returns
    -------
    PriorityWaits
        ``mean_waits[k]`` is the class-``k`` mean time in queue;
        ``mean_sojourns[k]`` adds the class's mean service time.

    Raises
    ------
    UnstableSystemError
        If the total utilization reaches 1 (Cobham waits for the lowest
        class diverge at ``σ_K -> 1``).
    """
    _validate_classes(classes)
    rho = np.array([c.utilization for c in classes])
    sigma = np.concatenate(([0.0], np.cumsum(rho)))
    check_stability(sigma[-1], where="non-preemptive priority M/G/1")
    w0 = sum(c.residual for c in classes)
    waits = w0 / ((1.0 - sigma[:-1]) * (1.0 - sigma[1:]))
    services = np.array([c.service.mean for c in classes])
    return PriorityWaits(
        mean_waits=waits,
        mean_sojourns=waits + services,
        utilizations=rho,
        total_utilization=float(sigma[-1]),
    )


def preemptive_resume_priority_mg1(classes: Sequence[ClassLoad]) -> PriorityWaits:
    """Exact preemptive-resume M/G/1 priority sojourn times.

    Under preemption a class-``k`` job's *completion time* includes the
    stretching of its own service by higher-priority interruptions, so
    the clean decomposition is the sojourn ``T_k``; we report
    ``mean_waits[k] = T_k - E[S_k]`` as the "delay beyond bare
    service", which is what the end-to-end delay model sums.
    """
    _validate_classes(classes)
    rho = np.array([c.utilization for c in classes])
    sigma = np.concatenate(([0.0], np.cumsum(rho)))
    check_stability(sigma[-1], where="preemptive-resume priority M/G/1")
    residual_cum = np.cumsum([c.residual for c in classes])
    services = np.array([c.service.mean for c in classes])
    sojourns = services / (1.0 - sigma[:-1]) + residual_cum / ((1.0 - sigma[:-1]) * (1.0 - sigma[1:]))
    return PriorityWaits(
        mean_waits=sojourns - services,
        mean_sojourns=sojourns,
        utilizations=rho,
        total_utilization=float(sigma[-1]),
    )
