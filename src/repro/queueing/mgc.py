"""M/G/c mean-wait approximations.

No exact closed form exists for the M/G/c queue; the library uses the
classic Lee–Longton two-moment approximation

    W_q(M/G/c) ≈ (1 + scv) / 2 · W_q(M/M/c)

which is exact at ``scv = 1`` (by construction) and asymptotically
exact in heavy traffic. Its accuracy is measured against simulation in
ablation A3.
"""

from __future__ import annotations

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError
from repro.queueing.metrics import QueueMetrics
from repro.queueing.mmc import MMc
from repro.queueing.stability import check_stability, require_positive_rate

__all__ = ["MGc"]


class MGc:
    """M/G/c queue via the Lee–Longton approximation.

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    service:
        Service-time distribution.
    c:
        Number of identical servers.
    """

    def __init__(self, lam: float, service: Distribution, c: int):
        self.lam = require_positive_rate(lam, "arrival rate")
        if not isinstance(service, Distribution):
            raise ModelValidationError(f"service must be a Distribution, got {type(service).__name__}")
        if c < 1 or int(c) != c:
            raise ModelValidationError(f"server count must be a positive integer, got {c}")
        self.service = service
        self.c = int(c)
        self.rho = check_stability(self.lam * service.mean / self.c, where="M/G/c")
        # Equivalent M/M/c with the same mean service time.
        self._mmc = MMc(lam=self.lam, mu=1.0 / service.mean, c=self.c)

    @property
    def mean_service(self) -> float:
        """``E[S]``."""
        return self.service.mean

    @property
    def mean_wait(self) -> float:
        """Lee–Longton: ``W_q ≈ (1 + scv)/2 · W_q(M/M/c)``."""
        return 0.5 * (1.0 + self.service.scv) * self._mmc.mean_wait

    @property
    def mean_sojourn(self) -> float:
        """``W = W_q + E[S]``."""
        return self.mean_wait + self.mean_service

    @property
    def mean_queue_length(self) -> float:
        """``L_q = λ W_q``."""
        return self.lam * self.mean_wait

    @property
    def mean_number_in_system(self) -> float:
        """``L = λ W``."""
        return self.lam * self.mean_sojourn

    def metrics(self) -> QueueMetrics:
        """All mean metrics bundled."""
        return QueueMetrics.from_waits(self.lam, self.rho, self.mean_wait, self.mean_service)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MGc(lam={self.lam:.6g}, service={self.service!r}, c={self.c})"
