"""Analytical queueing formulas.

This subpackage is the mathematical substrate under the paper's delay
model. It implements, from first principles:

* ``mm1``            — M/M/1 exact results.
* ``mmc``            — Erlang B / Erlang C and M/M/c exact results.
* ``mg1``            — Pollaczek–Khinchine M/G/1 results.
* ``mgc``            — M/G/c two-moment approximations (Lee–Longton).
* ``priority``       — multi-class M/G/1 priority queues: Cobham's
                       non-preemptive formula and preemptive-resume.
* ``priority_multiserver`` — exact M/M/c non-preemptive priority with a
                       common service rate, plus the Bondi–Buzen
                       scaling approximation for the general case.
* ``networks``       — open tandem networks of priority stations with
                       per-class end-to-end delays (the cluster model's
                       delay engine).
* ``stability``      — utilization and stability checking shared by all.

Conventions: class index 1 is the *highest* priority (arrays are
0-indexed, so ``waits[0]`` is the highest class); all rates are per
unit time; ``rho`` always means offered load over total capacity.
"""

from repro.queueing.metrics import QueueMetrics, little_l, little_lq
from repro.queueing.mm1 import MM1
from repro.queueing.mmc import MMc, erlang_b, erlang_c
from repro.queueing.mg1 import MG1
from repro.queueing.mgc import MGc
from repro.queueing.priority import (
    ClassLoad,
    nonpreemptive_priority_mg1,
    preemptive_resume_priority_mg1,
)
from repro.queueing.priority_multiserver import (
    bondi_buzen_priority_waits,
    nonpreemptive_priority_mmc_common_mu,
)
from repro.queueing.finite import MMcK
from repro.queueing.gm1 import GM1, interarrival_lst
from repro.queueing.loss import MGcc, servers_for_blocking
from repro.queueing.networks import StationSpec, TandemNetwork
from repro.queueing.phase_type import (
    PhaseType,
    as_phase_type,
    mmc_sojourn_ph,
    mph1_sojourn,
    mph1_waiting_time,
)
from repro.queueing.ps import ps_sojourn_times
from repro.queueing.routing import visit_ratio_matrix, visit_ratios_from_routing
from repro.queueing.stability import check_stability, total_utilization

__all__ = [
    "QueueMetrics",
    "little_l",
    "little_lq",
    "MM1",
    "MMc",
    "erlang_b",
    "erlang_c",
    "MG1",
    "MGc",
    "ClassLoad",
    "nonpreemptive_priority_mg1",
    "preemptive_resume_priority_mg1",
    "nonpreemptive_priority_mmc_common_mu",
    "bondi_buzen_priority_waits",
    "StationSpec",
    "TandemNetwork",
    "MGcc",
    "servers_for_blocking",
    "GM1",
    "interarrival_lst",
    "MMcK",
    "ps_sojourn_times",
    "PhaseType",
    "as_phase_type",
    "mph1_waiting_time",
    "mph1_sojourn",
    "mmc_sojourn_ph",
    "visit_ratios_from_routing",
    "visit_ratio_matrix",
    "check_stability",
    "total_utilization",
]
