"""Exact M/M/c results: Erlang B, Erlang C and all mean metrics.

Both Erlang functions are computed with the standard numerically stable
recurrences (never through factorials), so they remain accurate for
hundreds of servers — the regime the cost-minimization experiments
sweep through.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelValidationError
from repro.queueing.metrics import QueueMetrics
from repro.queueing.stability import check_stability, require_positive_rate

__all__ = ["erlang_b", "erlang_c", "MMc"]


def erlang_b(c: int, a: float) -> float:
    """Erlang-B blocking probability ``B(c, a)`` for offered load ``a``.

    Computed by the stable recurrence
    ``B(0, a) = 1``, ``B(k, a) = a B(k-1, a) / (k + a B(k-1, a))``.

    Valid for any ``a > 0`` (the loss system needs no stability
    condition).
    """
    if c < 0:
        raise ModelValidationError(f"server count must be non-negative, got {c}")
    if a < 0.0:
        raise ModelValidationError(f"offered load must be non-negative, got {a}")
    if a == 0.0:
        return 0.0 if c > 0 else 1.0
    b = 1.0
    for k in range(1, c + 1):
        b = a * b / (k + a * b)
    return b


def erlang_c(c: int, a: float) -> float:
    """Erlang-C probability of waiting ``C(c, a)``, offered load ``a = λ/μ``.

    Uses the identity ``C = c B / (c - a (1 - B))`` with Erlang-B from
    the stable recurrence. Requires ``a < c`` (stability).
    """
    if c < 1:
        raise ModelValidationError(f"server count must be >= 1, got {c}")
    if a < 0.0:
        raise ModelValidationError(f"offered load must be non-negative, got {a}")
    if a == 0.0:
        return 0.0
    check_stability(a / c, where="M/M/c")
    b = erlang_b(c, a)
    return c * b / (c - a * (1.0 - b))


class MMc:
    """M/M/c queue: Poisson arrivals ``lam``, ``c`` exponential servers
    at rate ``mu`` each, FCFS.

    Examples
    --------
    >>> q = MMc(lam=1.5, mu=1.0, c=2)
    >>> round(q.rho, 6)
    0.75
    """

    def __init__(self, lam: float, mu: float, c: int):
        self.lam = require_positive_rate(lam, "arrival rate")
        self.mu = require_positive_rate(mu, "service rate")
        if c < 1 or int(c) != c:
            raise ModelValidationError(f"server count must be a positive integer, got {c}")
        self.c = int(c)
        self.offered_load = self.lam / self.mu
        self.rho = check_stability(self.offered_load / self.c, where="M/M/c")

    @property
    def mean_service(self) -> float:
        """``E[S] = 1/μ``."""
        return 1.0 / self.mu

    @property
    def prob_wait(self) -> float:
        """Erlang-C probability an arrival must wait."""
        return erlang_c(self.c, self.offered_load)

    @property
    def mean_wait(self) -> float:
        """``W_q = C(c, a) / (cμ - λ)``."""
        return self.prob_wait / (self.c * self.mu - self.lam)

    @property
    def mean_sojourn(self) -> float:
        """``W = W_q + 1/μ``."""
        return self.mean_wait + self.mean_service

    @property
    def mean_queue_length(self) -> float:
        """``L_q = λ W_q``."""
        return self.lam * self.mean_wait

    @property
    def mean_number_in_system(self) -> float:
        """``L = λ W``."""
        return self.lam * self.mean_sojourn

    def metrics(self) -> QueueMetrics:
        """All mean metrics bundled."""
        return QueueMetrics.from_waits(self.lam, self.rho, self.mean_wait, self.mean_service)

    def wait_cdf(self, t: float | np.ndarray) -> float | np.ndarray:
        """Exact waiting-time CDF:
        ``P(W_q <= t) = 1 - C(c, a) e^{-(cμ - λ) t}``.
        """
        t_arr = np.asarray(t, dtype=float)
        pw = self.prob_wait
        result = 1.0 - pw * np.exp(-(self.c * self.mu - self.lam) * np.maximum(t_arr, 0.0))
        return float(result) if np.isscalar(t) or t_arr.ndim == 0 else result

    def wait_quantile(self, p: float) -> float:
        """Percentile of the waiting time (0 when ``p <= 1 - C``)."""
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {p}")
        pw = self.prob_wait
        if p <= 1.0 - pw:
            return 0.0
        return float(np.log(pw / (1.0 - p)) / (self.c * self.mu - self.lam))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MMc(lam={self.lam:.6g}, mu={self.mu:.6g}, c={self.c})"
