"""Exact M/M/1 results.

The single-server exponential queue: Poisson arrivals at rate ``λ``,
exponential service at rate ``μ``, FCFS. Exact closed forms for all
mean metrics, the queue-length distribution and the sojourn-time
distribution — the latter two power the property-based tests that
cross-check the simulator.
"""

from __future__ import annotations

import numpy as np

from repro.queueing.metrics import QueueMetrics
from repro.queueing.stability import check_stability, require_positive_rate

__all__ = ["MM1"]


class MM1:
    """M/M/1 queue with arrival rate ``lam`` and service rate ``mu``.

    Examples
    --------
    >>> q = MM1(lam=0.5, mu=1.0)
    >>> q.rho
    0.5
    >>> q.mean_sojourn  # 1 / (mu - lam)
    2.0
    """

    def __init__(self, lam: float, mu: float):
        self.lam = require_positive_rate(lam, "arrival rate")
        self.mu = require_positive_rate(mu, "service rate")
        self.rho = check_stability(self.lam / self.mu, where="M/M/1")

    @property
    def mean_service(self) -> float:
        """``E[S] = 1/μ``."""
        return 1.0 / self.mu

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay ``W_q = ρ / (μ - λ)``."""
        return self.rho / (self.mu - self.lam)

    @property
    def mean_sojourn(self) -> float:
        """Mean response time ``W = 1 / (μ - λ)``."""
        return 1.0 / (self.mu - self.lam)

    @property
    def mean_number_in_system(self) -> float:
        """``L = ρ / (1 - ρ)``."""
        return self.rho / (1.0 - self.rho)

    @property
    def mean_queue_length(self) -> float:
        """``L_q = ρ^2 / (1 - ρ)``."""
        return self.rho**2 / (1.0 - self.rho)

    def metrics(self) -> QueueMetrics:
        """All mean metrics bundled."""
        return QueueMetrics.from_waits(self.lam, self.rho, self.mean_wait, self.mean_service)

    def prob_n_in_system(self, n: int | np.ndarray) -> float | np.ndarray:
        """Geometric stationary distribution ``P(N = n) = (1-ρ) ρ^n``."""
        n_arr = np.asarray(n)
        if np.any(n_arr < 0):
            raise ValueError("n must be non-negative")
        result = (1.0 - self.rho) * self.rho**n_arr
        return float(result) if np.isscalar(n) or n_arr.ndim == 0 else result

    def sojourn_cdf(self, t: float | np.ndarray) -> float | np.ndarray:
        """Exact response-time CDF: ``T ~ Exp(μ - λ)``.

        The M/M/1 FCFS sojourn time is exponential with rate ``μ(1-ρ)``.
        """
        t_arr = np.asarray(t, dtype=float)
        result = 1.0 - np.exp(-(self.mu - self.lam) * np.maximum(t_arr, 0.0))
        return float(result) if np.isscalar(t) or t_arr.ndim == 0 else result

    def sojourn_quantile(self, p: float) -> float:
        """Inverse of :meth:`sojourn_cdf` — the percentile response time.

        Used to translate percentile SLAs into mean-delay targets for
        exponential tiers: ``t_p = -ln(1-p) / (μ - λ)``.
        """
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {p}")
        return -np.log1p(-p) / (self.mu - self.lam)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MM1(lam={self.lam:.6g}, mu={self.mu:.6g})"
