"""Loss systems: the M/G/c/c (Erlang-B) admission-control tier.

Front-end tiers often enforce a hard connection limit: a request that
arrives when all ``c`` slots are busy is *rejected*, not queued —
blocked calls cleared. The stationary blocking probability is
Erlang-B, famously **insensitive** to the service distribution beyond
its mean (an M/G/c/c property the simulator validates in the tests):

    B(c, a),   a = λ E[S]   (offered load in erlangs).

:class:`MGcc` wraps the metrics; :func:`servers_for_blocking` answers
the provisioning question ("how many slots for a 1% loss target?") by
the smallest ``c`` with ``B <= target`` — the loss-system analogue of
the P3 sizing step.
"""

from __future__ import annotations

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError
from repro.queueing.mmc import erlang_b
from repro.queueing.stability import require_positive_rate

__all__ = ["MGcc", "servers_for_blocking"]


class MGcc:
    """M/G/c/c loss system (no waiting room).

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    service:
        Service-time distribution (only its mean matters —
        insensitivity).
    c:
        Number of service slots.
    """

    def __init__(self, lam: float, service: Distribution, c: int):
        self.lam = require_positive_rate(lam, "arrival rate")
        if not isinstance(service, Distribution):
            raise ModelValidationError(
                f"service must be a Distribution, got {type(service).__name__}"
            )
        if c < 1 or int(c) != c:
            raise ModelValidationError(f"slot count must be a positive integer, got {c}")
        self.service = service
        self.c = int(c)
        self.offered_load = self.lam * service.mean

    @property
    def blocking_probability(self) -> float:
        """Erlang-B: the fraction of arrivals rejected."""
        return erlang_b(self.c, self.offered_load)

    @property
    def carried_load(self) -> float:
        """Mean number of busy slots: ``a (1 - B)``."""
        return self.offered_load * (1.0 - self.blocking_probability)

    @property
    def throughput(self) -> float:
        """Accepted-request rate: ``λ (1 - B)``."""
        return self.lam * (1.0 - self.blocking_probability)

    @property
    def utilization(self) -> float:
        """Per-slot utilization: carried load over ``c``."""
        return self.carried_load / self.c

    @property
    def mean_sojourn(self) -> float:
        """An *accepted* request stays exactly one service time."""
        return self.service.mean

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MGcc(lam={self.lam:.6g}, E[S]={self.service.mean:.6g}, c={self.c})"


def servers_for_blocking(
    lam: float, mean_service: float, target_blocking: float, c_max: int = 100_000
) -> int:
    """Smallest slot count with Erlang-B blocking at or below target.

    ``B(c, a)`` is strictly decreasing in ``c`` toward 0, so the answer
    always exists; ``c_max`` only guards against absurd targets.

    Raises
    ------
    ModelValidationError
        On a non-sensible target or if ``c_max`` is hit.
    """
    lam = require_positive_rate(lam, "arrival rate")
    if mean_service <= 0.0:
        raise ModelValidationError(f"mean service must be positive, got {mean_service}")
    if not 0.0 < target_blocking < 1.0:
        raise ModelValidationError(
            f"blocking target must be in (0, 1), got {target_blocking}"
        )
    a = lam * mean_service
    # Start near the offered load (B(a ± O(sqrt a)) brackets any
    # practical target) and walk up; the recurrence is O(c) anyway.
    c = 1
    b = a / (1.0 + a)
    while b > target_blocking:
        c += 1
        b = a * b / (c + a * b)
        if c > c_max:
            raise ModelValidationError(
                f"blocking target {target_blocking} needs more than {c_max} slots"
            )
    return c
