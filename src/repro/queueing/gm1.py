"""The G/M/1 queue — renewal arrivals, exponential service.

The dual of M/G/1: interarrival times are i.i.d. from a general
distribution ``A``, service is ``Exp(μ)``. The classic embedded-chain
result: the number found by an arrival is geometric with parameter
``σ``, the unique root in ``(0, 1)`` of

    σ = A*(μ (1 − σ)),

where ``A*`` is the interarrival Laplace–Stieltjes transform. The
waiting time then has an atom ``1 − σ`` at zero and an
``Exp(μ (1 − σ))`` tail, giving

    E[W] = σ / (μ (1 − σ)),     E[T] = 1 / (μ (1 − σ)).

The LST is evaluated exactly for phase-type interarrivals
(``A*(s) = α (sI − T)^{-1} t``) — exponential, Erlang,
hyperexponential, mixtures — and for deterministic interarrivals
(``e^{-s a}``, the D/M/1 queue). Pair with
:class:`repro.workload.RenewalProcess` to validate by simulation:
smoother-than-Poisson arrivals (SCV < 1) wait *less* than M/M/1,
burstier (SCV > 1) wait more.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq

from repro.distributions.base import Distribution
from repro.distributions.deterministic import Deterministic
from repro.exceptions import ModelValidationError
from repro.queueing.metrics import QueueMetrics
from repro.queueing.phase_type import as_phase_type
from repro.queueing.stability import check_stability, require_positive_rate

__all__ = ["GM1", "interarrival_lst"]


def interarrival_lst(dist: Distribution, s: float) -> float:
    """Laplace–Stieltjes transform ``E[e^{-s A}]`` of an interarrival
    distribution, exact for deterministic and phase-type families.

    Raises
    ------
    ModelValidationError
        If the family has no exact transform here (lognormal, Pareto,
        Weibull, non-integer gamma).
    """
    if s < 0.0:
        raise ModelValidationError(f"transform argument must be non-negative, got {s}")
    if isinstance(dist, Deterministic):
        return float(np.exp(-s * dist.value))
    ph = as_phase_type(dist)
    if ph is None:
        raise ModelValidationError(
            f"{type(dist).__name__} has no exact LST here; use a phase-type or "
            "deterministic interarrival distribution"
        )
    d = ph.order
    vec = np.linalg.solve(s * np.eye(d) - ph.T, ph.exit_rates)
    return float(ph.alpha @ vec)


class GM1:
    """G/M/1 queue: renewal arrivals ``interarrival``, service ``Exp(mu)``.

    Parameters
    ----------
    interarrival:
        Interarrival distribution (phase-type or deterministic).
    mu:
        Exponential service rate.
    """

    def __init__(self, interarrival: Distribution, mu: float):
        if not isinstance(interarrival, Distribution):
            raise ModelValidationError(
                f"interarrival must be a Distribution, got {type(interarrival).__name__}"
            )
        self.mu = require_positive_rate(mu, "service rate")
        self.interarrival = interarrival
        self.lam = 1.0 / interarrival.mean
        self.rho = check_stability(self.lam / self.mu, where="G/M/1")
        self.sigma = self._solve_sigma()

    def _solve_sigma(self) -> float:
        """Root of ``sigma = A*(mu (1 - sigma))`` in (0, 1).

        ``f(x) = A*(μ(1−x)) − x`` satisfies ``f(0) = A*(μ) > 0`` and
        ``f(1) = 0``; stability (ρ < 1) makes the interior root unique
        and ``f`` crosses from + to − before 1.
        """

        def f(x: float) -> float:
            return interarrival_lst(self.interarrival, self.mu * (1.0 - x)) - x

        # Bracket away from the trivial root at 1.
        hi = 1.0 - 1e-12
        if f(hi) >= 0.0:  # pragma: no cover - only at rho -> 1
            return hi
        return float(brentq(f, 0.0, hi, xtol=1e-14, rtol=1e-12))

    @property
    def mean_wait(self) -> float:
        """``E[W] = σ / (μ (1 − σ))``."""
        return self.sigma / (self.mu * (1.0 - self.sigma))

    @property
    def mean_sojourn(self) -> float:
        """``E[T] = 1 / (μ (1 − σ))``."""
        return 1.0 / (self.mu * (1.0 - self.sigma))

    @property
    def prob_wait(self) -> float:
        """An arrival finds the server busy with probability ``σ``."""
        return self.sigma

    @property
    def mean_number_in_system(self) -> float:
        """``L = λ E[T]`` (Little)."""
        return self.lam * self.mean_sojourn

    def metrics(self) -> QueueMetrics:
        """All mean metrics bundled."""
        return QueueMetrics.from_waits(self.lam, self.rho, self.mean_wait, 1.0 / self.mu)

    def sojourn_quantile(self, p: float) -> float:
        """The sojourn is exactly ``Exp(μ (1 − σ))`` — invertible tail."""
        if not 0.0 < p < 1.0:
            raise ModelValidationError(f"quantile level must be in (0, 1), got {p}")
        return float(-np.log1p(-p) / (self.mu * (1.0 - self.sigma)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GM1({self.interarrival!r}, mu={self.mu:.6g})"
