"""Multi-server priority queues.

Two results power the multi-server tiers of the cluster model:

**Exact M/M/c non-preemptive priority with a common service rate**
(Kella & Yechiali 1985). When every class has the same exponential
service rate ``μ`` the Cobham argument goes through with the M/M/c
"residual" in place of the M/G/1 one:

    W_k = C(c, a) / (c μ) / ((1 - σ_{k-1}) (1 - σ_k)),
    σ_k = Σ_{j<=k} λ_j / (c μ).

With ``K = 1`` this collapses to the standard M/M/c wait
``C / (cμ - λ)``.

**Bondi–Buzen scaling approximation** for the general case (class-
dependent general service, ``c`` servers):

    W_k(prio, c) ≈ W_k(prio, 1 fast server) · r,
    r = W(FCFS M/G/c) / W(FCFS M/G/1 fast),

i.e. the ratio of multi-server to equivalent fast single-server FCFS
waits is assumed to carry over from FCFS to priority scheduling. The
"fast server" serves each class at ``c`` times the speed so total
utilization matches. Exact at ``c = 1``; ablation A3 quantifies the
error against simulation for ``c > 1``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ModelValidationError
from repro.queueing.mgc import MGc
from repro.queueing.mg1 import MG1
from repro.queueing.mmc import erlang_c
from repro.queueing.priority import ClassLoad, PriorityWaits, nonpreemptive_priority_mg1
from repro.queueing.stability import check_stability, require_positive_rate

__all__ = ["nonpreemptive_priority_mmc_common_mu", "bondi_buzen_priority_waits"]


def nonpreemptive_priority_mmc_common_mu(
    arrival_rates: Sequence[float], mu: float, c: int
) -> PriorityWaits:
    """Exact non-preemptive priority M/M/c waits, common service rate.

    Parameters
    ----------
    arrival_rates:
        Per-class Poisson rates, highest priority first.
    mu:
        Common exponential service rate of every class at each server.
    c:
        Number of identical servers.
    """
    lam = np.asarray(arrival_rates, dtype=float)
    if lam.ndim != 1 or lam.size == 0:
        raise ModelValidationError("arrival_rates must be a non-empty 1-D sequence")
    if np.any(lam < 0.0):
        raise ModelValidationError(f"arrival rates must be non-negative, got {lam}")
    mu = require_positive_rate(mu, "service rate")
    if c < 1 or int(c) != c:
        raise ModelValidationError(f"server count must be a positive integer, got {c}")
    c = int(c)
    total = float(lam.sum())
    a = total / mu
    rho = lam / (c * mu)
    sigma = np.concatenate(([0.0], np.cumsum(rho)))
    check_stability(sigma[-1], where="priority M/M/c")
    w0 = erlang_c(c, a) / (c * mu)
    waits = w0 / ((1.0 - sigma[:-1]) * (1.0 - sigma[1:]))
    services = np.full(lam.size, 1.0 / mu)
    return PriorityWaits(
        mean_waits=waits,
        mean_sojourns=waits + services,
        utilizations=rho * c,  # per-class offered utilization λ_k/μ relative to one server
        total_utilization=float(sigma[-1]),
    )


def bondi_buzen_priority_waits(classes: Sequence[ClassLoad], c: int) -> PriorityWaits:
    """Bondi–Buzen multi-server priority approximation.

    Parameters
    ----------
    classes:
        Per-class loads with service times at **one actual server's**
        speed, highest priority first.
    c:
        Number of identical servers at the station.

    Returns
    -------
    PriorityWaits
        Per-class mean waits; sojourns add the *actual* (slow-server)
        service time since a job occupies one real server.
    """
    if c < 1 or int(c) != c:
        raise ModelValidationError(f"server count must be a positive integer, got {c}")
    c = int(c)
    if len(classes) == 0:
        raise ModelValidationError("need at least one customer class")
    if c == 1:
        return nonpreemptive_priority_mg1(classes)

    # Equivalent fast single server: each service time divided by c.
    fast = [ClassLoad(cl.arrival_rate, cl.service.scaled(1.0 / c)) for cl in classes]
    fast_prio = nonpreemptive_priority_mg1(fast)

    # FCFS scaling ratio on the aggregate flow.
    lam = np.array([cl.arrival_rate for cl in classes])
    total = float(lam.sum())
    if total <= 0.0:
        raise ModelValidationError("total arrival rate must be positive")
    probs = lam / total
    # Aggregate service distribution moments (mixture over classes).
    agg_mean = float(np.dot(probs, [cl.service.mean for cl in classes]))
    agg_m2 = float(np.dot(probs, [cl.service.second_moment for cl in classes]))
    scv = max(agg_m2 / agg_mean**2 - 1.0, 0.0)
    check_stability(total * agg_mean / c, where="priority M/G/c")

    from repro.distributions.fitting import fit_two_moments

    agg_dist = fit_two_moments(agg_mean, scv)
    w_fcfs_multi = MGc(total, agg_dist, c).mean_wait
    w_fcfs_fast = MG1(total, agg_dist.scaled(1.0 / c)).mean_wait
    ratio = w_fcfs_multi / w_fcfs_fast if w_fcfs_fast > 0.0 else 1.0

    waits = fast_prio.mean_waits * ratio
    services = np.array([cl.service.mean for cl in classes])
    rho = np.array([cl.utilization for cl in classes]) / c
    return PriorityWaits(
        mean_waits=waits,
        mean_sojourns=waits + services,
        utilizations=rho,
        total_utilization=float(rho.sum()),
    )
