"""Phase-type distributions and the exact M/PH/1 waiting time.

A phase-type (PH) distribution is the absorption time of a transient
Markov chain — representation ``(α, T)`` with initial row vector ``α``
over the transient phases and sub-generator ``T``. PH is dense in the
non-negative distributions and *closed under the operations queueing
needs*: mixtures, convolutions, equilibrium (stationary-excess)
transforms and geometric compounds. That closure yields the classic
exact result used here:

**M/PH/1 FCFS waiting time.** With Poisson arrivals at rate ``λ`` and
PH(α, T) service (mean ``m``, ``ρ = λ m < 1``), the stationary wait is
zero with probability ``1 − ρ`` and otherwise PH distributed:

    P(W > x) = ρ · α_e · exp((T + ρ t α_e) x) · 1,

where ``t = −T·1`` (absorption rates) and ``α_e = α(−T)^{-1} / m`` is
the equilibrium initial vector. This follows from the
Pollaczek–Khinchine representation of ``W`` as a geometric(ρ) compound
of equilibrium service times. For exponential service it collapses to
the textbook ``ρ e^{−(μ−λ)x}``.

The FCFS *sojourn* ``W + S`` is then the convolution of two PH
representations — again PH. These exact tails upgrade the percentile
machinery for FCFS tiers (the hypoexponential approximation remains
the tool for priority tiers, where no finite PH form exists).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.distributions.base import Distribution, ScaledDistribution
from repro.distributions.erlang import Erlang
from repro.distributions.exponential import Exponential
from repro.distributions.gamma_dist import Gamma
from repro.distributions.hyperexponential import HyperExponential
from repro.distributions.mixture import Mixture
from repro.exceptions import ModelValidationError, UnstableSystemError

__all__ = [
    "PhaseType",
    "as_phase_type",
    "mph1_waiting_time",
    "mph1_sojourn",
    "mmc_sojourn_ph",
]


class PhaseType:
    """A phase-type distribution PH(α, T).

    Parameters
    ----------
    alpha:
        Initial probability row vector over the transient phases;
        ``sum(alpha) <= 1`` (any deficit is an atom at zero).
    T:
        Sub-generator: negative diagonal, non-negative off-diagonal,
        row sums ``<= 0`` with strict inequality somewhere reachable
        (absorption must be certain).
    """

    def __init__(self, alpha: np.ndarray, T: np.ndarray):
        a = np.atleast_1d(np.asarray(alpha, dtype=float))
        t = np.atleast_2d(np.asarray(T, dtype=float))
        if a.ndim != 1 or t.shape != (a.size, a.size) or a.size == 0:
            raise ModelValidationError(
                f"need alpha (d,) and T (d, d); got {a.shape} and {t.shape}"
            )
        if np.any(a < -1e-12) or a.sum() > 1.0 + 1e-9:
            raise ModelValidationError(f"alpha must be a (sub)probability vector, got {a}")
        if np.any(np.diag(t) >= 0.0):
            raise ModelValidationError("T must have a strictly negative diagonal")
        off = t - np.diag(np.diag(t))
        if np.any(off < -1e-12):
            raise ModelValidationError("T must have non-negative off-diagonal entries")
        if np.any(t.sum(axis=1) > 1e-9):
            raise ModelValidationError("T row sums must be non-positive")
        self.alpha = np.clip(a, 0.0, None)
        self.T = t

    # -- basic quantities ----------------------------------------------------
    @property
    def order(self) -> int:
        """Number of transient phases."""
        return self.alpha.size

    @property
    def exit_rates(self) -> np.ndarray:
        """Absorption rate out of each phase: ``t = −T·1``."""
        return -self.T.sum(axis=1)

    def moment(self, n: int) -> float:
        """Raw moment ``E[X^n] = n! · α (−T)^{-n} 1``."""
        if n < 1:
            raise ModelValidationError(f"moment order must be >= 1, got {n}")
        inv = np.linalg.inv(-self.T)
        vec = self.alpha @ np.linalg.matrix_power(inv, n)
        return float(_factorial(n) * vec.sum())

    @property
    def mean(self) -> float:
        """First moment."""
        return self.moment(1)

    def survival(self, x: float | np.ndarray) -> float | np.ndarray:
        """``P(X > x) = α exp(T x) 1`` (plus nothing for the zero atom)."""
        xs = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.empty(xs.shape)
        for i, xi in enumerate(xs):
            if xi <= 0.0:
                out[i] = float(self.alpha.sum())
            else:
                out[i] = float(np.clip((self.alpha @ expm(self.T * xi)).sum(), 0.0, 1.0))
        return float(out[0]) if np.isscalar(x) or np.ndim(x) == 0 else out

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """``P(X <= x)``."""
        s = self.survival(x)
        return 1.0 - s

    def quantile(self, p: float, tol: float = 1e-10) -> float:
        """Inverse CDF by bracketing + bisection on the survival."""
        if not 0.0 < p < 1.0:
            raise ModelValidationError(f"quantile level must be in (0, 1), got {p}")
        atom = 1.0 - float(self.alpha.sum())
        if p <= atom:
            return 0.0
        target = 1.0 - p
        hi = max(self.mean, 1e-12)
        for _ in range(200):
            if self.survival(hi) < target:
                break
            hi *= 2.0
        lo = 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if hi - lo <= tol * max(hi, 1.0):
                break
            if self.survival(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    # -- closure operations ----------------------------------------------------
    def equilibrium(self) -> "PhaseType":
        """Stationary-excess (equilibrium) distribution:
        PH(α_e, T) with ``α_e = α(−T)^{-1} / mean``."""
        inv = np.linalg.inv(-self.T)
        alpha_e = (self.alpha @ inv) / self.mean
        return PhaseType(alpha_e, self.T)

    def convolve(self, other: "PhaseType") -> "PhaseType":
        """Distribution of the independent sum ``X + Y``.

        Standard block construction: run this chain, then on absorption
        start the other with its initial vector.
        """
        d1, d2 = self.order, other.order
        alpha = np.concatenate([self.alpha, (1.0 - self.alpha.sum()) * other.alpha])
        top = np.hstack([self.T, np.outer(self.exit_rates, other.alpha)])
        bottom = np.hstack([np.zeros((d2, d1)), other.T])
        return PhaseType(alpha, np.vstack([top, bottom]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhaseType(order={self.order}, mean={self.mean:.6g})"


def _factorial(n: int) -> int:
    out = 1
    for i in range(2, n + 1):
        out *= i
    return out


def as_phase_type(dist: Distribution) -> PhaseType | None:
    """Exact PH representation of a distribution, or ``None`` when the
    family has no finite PH form (deterministic, lognormal, Pareto,
    Weibull, non-integer-shape gamma).

    Supported exactly: exponential, Erlang, hyperexponential,
    integer-shape gamma, scaled versions thereof, and mixtures of
    supported components.
    """
    if isinstance(dist, Exponential):
        return PhaseType(np.array([1.0]), np.array([[-dist.rate]]))
    if isinstance(dist, Erlang):
        return _erlang_ph(dist.k, dist.rate)
    if isinstance(dist, Gamma):
        k = dist.k
        if abs(k - round(k)) < 1e-12 and k >= 1.0:
            return _erlang_ph(int(round(k)), dist.rate)
        return None
    if isinstance(dist, HyperExponential):
        d = dist.rates.size
        return PhaseType(dist.probs.copy(), np.diag(-dist.rates))
    if isinstance(dist, ScaledDistribution):
        base = as_phase_type(dist.base)
        if base is None:
            return None
        # Scaling time by c divides every rate by c.
        return PhaseType(base.alpha, base.T / dist.factor)
    if isinstance(dist, Mixture):
        parts = [as_phase_type(c) for c in dist.components]
        if any(p is None for p in parts):
            return None
        alpha = np.concatenate([p * part.alpha for p, part in zip(dist.probs, parts)])
        dims = [part.order for part in parts]
        T = np.zeros((sum(dims), sum(dims)))
        pos = 0
        for part, d in zip(parts, dims):
            T[pos : pos + d, pos : pos + d] = part.T
            pos += d
        return PhaseType(alpha, T)
    return None


def _erlang_ph(k: int, rate: float) -> PhaseType:
    alpha = np.zeros(k)
    alpha[0] = 1.0
    T = np.diag(np.full(k, -rate)) + np.diag(np.full(k - 1, rate), 1)
    return PhaseType(alpha, T)


def mph1_waiting_time(lam: float, service: Distribution) -> PhaseType:
    """Exact stationary FCFS waiting time of the M/PH/1 queue.

    Returns a :class:`PhaseType` whose zero atom carries probability
    ``1 − ρ`` (``alpha`` sums to ``ρ``).

    Raises
    ------
    ModelValidationError
        If the service distribution has no exact PH representation.
    UnstableSystemError
        If ``ρ >= 1``.
    """
    ph = as_phase_type(service)
    if ph is None:
        raise ModelValidationError(
            f"{type(service).__name__} has no exact phase-type representation; "
            "use the two-moment hypoexponential approximation instead"
        )
    rho = lam * ph.mean
    if rho >= 1.0:
        raise UnstableSystemError(f"M/PH/1 unstable: rho = {rho:.6g}", utilization=rho)
    eq = ph.equilibrium()
    # Geometric(rho) compound of equilibrium services: on absorption,
    # restart with probability rho.
    S = ph.T + rho * np.outer(ph.exit_rates, eq.alpha)
    return PhaseType(rho * eq.alpha, S)


def mph1_sojourn(lam: float, service: Distribution) -> PhaseType:
    """Exact stationary FCFS sojourn (wait + service) of M/PH/1."""
    wait = mph1_waiting_time(lam, service)
    svc = as_phase_type(service)
    assert svc is not None  # mph1_waiting_time already validated
    return wait.convolve(svc)


def mmc_sojourn_ph(lam: float, mu: float, c: int) -> PhaseType:
    """Exact FCFS M/M/c sojourn time as a phase-type distribution.

    The wait is ``0`` with probability ``1 − C(c, a)`` and
    ``Exp(cμ − λ)`` otherwise (exact), and is independent of the job's
    own ``Exp(μ)`` service — so the sojourn is the two-branch PH

        with prob 1 − C:   Exp(μ)
        with prob C:       Exp(cμ − λ) then Exp(μ),

    three phases in total. Collapses to the exponential M/M/1 sojourn
    at ``c = 1``.
    """
    from repro.queueing.mmc import MMc

    q = MMc(lam=lam, mu=mu, c=c)  # validates inputs & stability
    pw = q.prob_wait
    drain = c * mu - lam
    alpha = np.array([pw, 1.0 - pw, 0.0])
    T = np.array(
        [
            [-drain, 0.0, drain],  # waiting phase, then service
            [0.0, -mu, 0.0],       # straight to service (no wait)
            [0.0, 0.0, -mu],       # service after waiting
        ]
    )
    return PhaseType(alpha, T)
