"""Pollaczek–Khinchine results for the M/G/1 queue.

The mean waiting time of an FCFS M/G/1 queue depends on the service
distribution only through its first two moments:

    W_q = λ E[S²] / (2 (1 - ρ)) = ρ E[S] (1 + scv) / (2 (1 - ρ))

This is the building block generalized by Cobham's priority formula in
:mod:`repro.queueing.priority`.
"""

from __future__ import annotations

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError
from repro.queueing.metrics import QueueMetrics
from repro.queueing.stability import check_stability, require_positive_rate

__all__ = ["MG1"]


class MG1:
    """M/G/1 queue: Poisson arrivals at ``lam``, general service ``service``.

    Parameters
    ----------
    lam:
        Arrival rate.
    service:
        Service-time distribution (needs finite ``second_moment``).

    Examples
    --------
    >>> from repro.distributions import Exponential, Deterministic
    >>> MG1(0.5, Exponential(1.0)).mean_wait  # matches M/M/1
    1.0
    >>> MG1(0.5, Deterministic(1.0)).mean_wait  # M/D/1: exactly half
    0.5
    """

    def __init__(self, lam: float, service: Distribution):
        self.lam = require_positive_rate(lam, "arrival rate")
        if not isinstance(service, Distribution):
            raise ModelValidationError(f"service must be a Distribution, got {type(service).__name__}")
        self.service = service
        self.rho = check_stability(self.lam * service.mean, where="M/G/1")

    @property
    def mean_service(self) -> float:
        """``E[S]``."""
        return self.service.mean

    @property
    def residual_service(self) -> float:
        """Mean residual work an arrival finds in service:
        ``W_0 = λ E[S²] / 2`` (mean remaining service time weighted by
        the probability the server is busy).
        """
        return 0.5 * self.lam * self.service.second_moment

    @property
    def mean_wait(self) -> float:
        """Pollaczek–Khinchine mean wait ``W_q = W_0 / (1 - ρ)``."""
        return self.residual_service / (1.0 - self.rho)

    @property
    def mean_sojourn(self) -> float:
        """``W = W_q + E[S]``."""
        return self.mean_wait + self.mean_service

    @property
    def mean_queue_length(self) -> float:
        """``L_q = λ W_q``."""
        return self.lam * self.mean_wait

    @property
    def mean_number_in_system(self) -> float:
        """``L = λ W``."""
        return self.lam * self.mean_sojourn

    def metrics(self) -> QueueMetrics:
        """All mean metrics bundled."""
        return QueueMetrics.from_waits(self.lam, self.rho, self.mean_wait, self.mean_service)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MG1(lam={self.lam:.6g}, service={self.service!r})"
