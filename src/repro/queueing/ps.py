"""Processor-sharing (PS) stations.

Round-robin application servers are classically modeled as egalitarian
processor sharing: all jobs present share the service capacity
equally. Two celebrated properties make PS analytically pleasant:

* **Insensitivity** (M/G/1-PS): the mean sojourn depends on the
  service distribution only through its mean,

      E[T_k] = E[S_k] / (1 - ρ).

* For multi-server egalitarian PS the library uses the standard
  insensitive approximation

      E[T_k] = E[S_k] · (1 + C(c, a) / (c (1 - ρ)))

  which is exact at ``c = 1`` (reduces to the formula above) and, for
  exponential service, coincides with the M/M/c-FCFS mean sojourn
  (both queues have the same mean occupancy).

Per-class fairness: under PS every class sees the same *stretch*
``T_k / E[S_k]`` — there is no priority differentiation, which is why
the paper's SLA machinery prefers head-of-line priority; the PS
station exists as the no-differentiation comparison point.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError
from repro.queueing.mmc import erlang_c
from repro.queueing.stability import check_stability

__all__ = ["ps_sojourn_times"]


def ps_sojourn_times(
    arrival_rates: Sequence[float], services: Sequence[Distribution], c: int = 1
) -> np.ndarray:
    """Per-class mean sojourn times at an egalitarian PS station.

    Parameters
    ----------
    arrival_rates:
        Per-class Poisson rates.
    services:
        Per-class service-time distributions (only means are used —
        insensitivity).
    c:
        Number of servers sharing capacity (``c = 1`` is classic PS).

    Returns
    -------
    numpy.ndarray
        ``E[T_k]`` per class. All classes experience the same stretch
        factor ``E[T_k] / E[S_k]``.
    """
    lam = np.asarray(arrival_rates, dtype=float)
    if lam.ndim != 1 or lam.size != len(services):
        raise ModelValidationError(
            f"got {lam.size} arrival rates but {len(services)} services"
        )
    if np.any(lam < 0.0):
        raise ModelValidationError(f"arrival rates must be non-negative, got {lam}")
    if c < 1 or int(c) != c:
        raise ModelValidationError(f"server count must be a positive integer, got {c}")
    if not all(isinstance(s, Distribution) for s in services):
        raise ModelValidationError("services must be Distribution instances")
    means = np.array([s.mean for s in services])
    total = float(lam.sum())
    if total <= 0.0:
        raise ModelValidationError("total arrival rate must be positive")
    agg_mean = float(np.dot(lam, means)) / total
    rho = check_stability(total * agg_mean / c, where="PS station")
    if c == 1:
        stretch = 1.0 / (1.0 - rho)
    else:
        a = total * agg_mean
        stretch = 1.0 + erlang_c(c, a) / (c * (1.0 - rho))
    return means * stretch
