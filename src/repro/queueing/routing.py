"""Probabilistic routing → visit ratios (open Jackson traffic equations).

The tandem cluster is the paper's base topology, but enterprise
request flows branch and loop: a request may retry the database,
bounce between the application and cache tiers, or skip tiers
entirely. With Markovian routing — after finishing at station ``i`` a
class-``k`` job moves to station ``j`` with probability
``R_k[i, j]`` and leaves with probability ``1 − Σ_j R_k[i, j]`` — the
expected visit counts solve the traffic equations

    v_k = e_k + R_k^T v_k        ⇒        v_k = (I − R_k^T)^{-1} e_k,

where ``e_k`` is the entry distribution over stations. Those visit
ratios drop straight into :class:`repro.queueing.networks.TandemNetwork`
/ :class:`repro.cluster.ClusterModel`, whose delay and energy formulas
are already visit-ratio-weighted; the decomposition approximation is
unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = ["ClassRouting", "visit_ratios_from_routing", "visit_ratio_matrix"]


class ClassRouting:
    """One class's Markovian routing: matrix + entry distribution.

    The analytic model consumes this through
    :func:`visit_ratios_from_routing`; the simulator replays it
    job-by-job (``simulate(..., routing=[...])``), drawing each hop
    from the routing matrix — which validates the decomposition the
    analytic side relies on.
    """

    def __init__(self, matrix: np.ndarray, entry: np.ndarray | int = 0):
        self.matrix = np.asarray(matrix, dtype=float)
        # Validate by computing the visit ratios once (raises on any
        # malformed input or non-terminating chain).
        self.visit_ratios = visit_ratios_from_routing(self.matrix, entry)
        m = self.matrix.shape[0]
        if isinstance(entry, (int, np.integer)):
            e = np.zeros(m)
            e[int(entry)] = 1.0
        else:
            e = np.asarray(entry, dtype=float)
        self.entry = e

    @property
    def num_stations(self) -> int:
        """Number of stations the routing is defined over."""
        return self.matrix.shape[0]


def visit_ratios_from_routing(
    routing: np.ndarray, entry: np.ndarray | int = 0
) -> np.ndarray:
    """Expected visit counts per station for one class.

    Parameters
    ----------
    routing:
        ``(M, M)`` substochastic matrix; ``routing[i, j]`` is the
        probability of moving to station ``j`` after finishing at
        ``i``. Each row must sum to at most 1; the deficit is the exit
        probability.
    entry:
        Either the index of the entry station (all jobs enter there)
        or a length-``M`` probability vector over entry stations.

    Returns
    -------
    numpy.ndarray
        ``v[i]`` — mean number of visits a job pays to station ``i``.

    Raises
    ------
    ModelValidationError
        On malformed inputs or a non-terminating chain (spectral
        radius of the routing matrix ≥ 1 — jobs would never leave).
    """
    r = np.asarray(routing, dtype=float)
    if r.ndim != 2 or r.shape[0] != r.shape[1] or r.shape[0] == 0:
        raise ModelValidationError(f"routing must be a square matrix, got shape {r.shape}")
    m = r.shape[0]
    if np.any(r < 0.0):
        raise ModelValidationError("routing probabilities must be non-negative")
    row_sums = r.sum(axis=1)
    if np.any(row_sums > 1.0 + 1e-12):
        raise ModelValidationError(
            f"routing rows must sum to at most 1, got sums {row_sums.tolist()}"
        )
    if isinstance(entry, (int, np.integer)):
        if not 0 <= entry < m:
            raise ModelValidationError(f"entry station {entry} out of range [0, {m})")
        e = np.zeros(m)
        e[entry] = 1.0
    else:
        e = np.asarray(entry, dtype=float)
        if e.shape != (m,) or np.any(e < 0.0) or abs(e.sum() - 1.0) > 1e-9:
            raise ModelValidationError(
                f"entry must be a station index or a length-{m} probability vector"
            )
    # Termination: the expected-visit series converges iff the spectral
    # radius of R is strictly below 1.
    radius = float(np.max(np.abs(np.linalg.eigvals(r)))) if m > 1 else float(r[0, 0])
    if radius >= 1.0 - 1e-12:
        raise ModelValidationError(
            f"routing chain does not terminate (spectral radius {radius:.6g} >= 1)"
        )
    v = np.linalg.solve(np.eye(m) - r.T, e)
    # Round-off guard: visits are expectations of non-negative counts.
    return np.maximum(v, 0.0)


def visit_ratio_matrix(
    routings: Sequence[np.ndarray], entries: Sequence[np.ndarray | int] | None = None
) -> np.ndarray:
    """Stack per-class visit ratios into the ``(K, M)`` matrix that
    :class:`repro.cluster.ClusterModel` accepts.

    Parameters
    ----------
    routings:
        One routing matrix per class, all ``(M, M)``.
    entries:
        Optional per-class entry specs (defaults to station 0).
    """
    if len(routings) == 0:
        raise ModelValidationError("need at least one class routing matrix")
    if entries is None:
        entries = [0] * len(routings)
    if len(entries) != len(routings):
        raise ModelValidationError(
            f"got {len(routings)} routings but {len(entries)} entries"
        )
    rows = [visit_ratios_from_routing(r, e) for r, e in zip(routings, entries)]
    m = rows[0].shape[0]
    if any(row.shape != (m,) for row in rows):
        raise ModelValidationError("all classes must route over the same station set")
    return np.stack(rows)
