"""Finite-buffer queues: M/M/1/K and M/M/c/K.

Between the open queue (unbounded delay under overload) and the pure
loss system (no waiting at all) sits the finite buffer: up to ``K``
requests in the system, arrivals beyond that rejected. The stationary
distribution is the truncated birth–death chain

    p_n ∝ a^n / (n! for n <= c, c! c^{n-c} for n > c),   n = 0..K,

giving closed forms for blocking (``p_K``), throughput
(``λ (1 − p_K)``), mean occupancy, and — via Little on the *accepted*
flow — the mean sojourn of accepted requests. Both overload modes are
graceful: delay is bounded by ``K/ (cμ)``-ish and loss by ``p_K``.

The simulator mirrors this through the per-tier ``capacity`` knob
(arrivals finding ``capacity`` jobs in system are rejected like a
loss station), so the closed forms are validated end-to-end.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelValidationError
from repro.queueing.stability import require_positive_rate

__all__ = ["MMcK"]


class MMcK:
    """M/M/c/K queue: ``c`` exponential servers, at most ``K`` in system.

    Parameters
    ----------
    lam:
        Poisson arrival rate (no stability condition — the buffer
        bounds the system).
    mu:
        Per-server service rate.
    c:
        Number of servers.
    K:
        System capacity (servers + waiting), ``K >= c``.
    """

    def __init__(self, lam: float, mu: float, c: int, K: int):
        self.lam = require_positive_rate(lam, "arrival rate")
        self.mu = require_positive_rate(mu, "service rate")
        if c < 1 or int(c) != c:
            raise ModelValidationError(f"server count must be a positive integer, got {c}")
        if K < c or int(K) != K:
            raise ModelValidationError(f"capacity K must be an integer >= c={c}, got {K}")
        self.c = int(c)
        self.K = int(K)
        self._probs = self._stationary()

    def _stationary(self) -> np.ndarray:
        a = self.lam / self.mu
        logs = np.empty(self.K + 1)
        logs[0] = 0.0
        for n in range(1, self.K + 1):
            # log p_n - log p_{n-1} = log(a / min(n, c))
            logs[n] = logs[n - 1] + np.log(a / min(n, self.c))
        logs -= logs.max()  # stabilize before exponentiation
        p = np.exp(logs)
        return p / p.sum()

    @property
    def probabilities(self) -> np.ndarray:
        """Stationary distribution ``p_0..p_K``."""
        return self._probs.copy()

    @property
    def blocking_probability(self) -> float:
        """PASTA: an arrival is rejected with probability ``p_K``."""
        return float(self._probs[-1])

    @property
    def throughput(self) -> float:
        """Accepted-request rate ``λ (1 − p_K)``."""
        return self.lam * (1.0 - self.blocking_probability)

    @property
    def mean_number_in_system(self) -> float:
        """``L = Σ n p_n``."""
        return float(np.dot(np.arange(self.K + 1), self._probs))

    @property
    def mean_sojourn(self) -> float:
        """Mean time in system of an *accepted* request (Little on the
        accepted flow): ``L / (λ (1 − p_K))``."""
        return self.mean_number_in_system / self.throughput

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay of an accepted request."""
        return self.mean_sojourn - 1.0 / self.mu

    @property
    def utilization(self) -> float:
        """Mean fraction of servers busy (carried load over ``c``)."""
        busy = float(np.dot(np.minimum(np.arange(self.K + 1), self.c), self._probs))
        return busy / self.c

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MMcK(lam={self.lam:.6g}, mu={self.mu:.6g}, c={self.c}, K={self.K})"
