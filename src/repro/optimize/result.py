"""Uniform result record for every optimizer in the package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["OptimizationResult"]


@dataclass
class OptimizationResult:
    """Outcome of a constrained optimization run.

    Attributes
    ----------
    x:
        The decision vector at the returned point.
    fun:
        Objective value at ``x``.
    success:
        True iff a feasible point satisfying the solver's tolerances
        was found.
    message:
        Human-readable status.
    n_evaluations:
        Number of objective evaluations consumed (the T4 efficiency
        metric).
    constraint_violation:
        Max violation of any inequality constraint at ``x`` (0 when
        feasible).
    nit:
        Solver iterations of the winning start (SciPy ``nit``; 0 when
        the backend does not report iterations).
    nfev:
        Function evaluations the winning start consumed (SciPy
        ``nfev``; ``n_evaluations`` is the total across starts).
    status:
        Backend status code of the winning start (SciPy ``status``;
        ``0`` means converged for SLSQP, ``None`` when no backend ran).
    meta:
        Solver-specific extras (per-start results, chosen counts,
        final per-constraint residuals, ...).
    """

    x: np.ndarray
    fun: float
    success: bool
    message: str = ""
    n_evaluations: int = 0
    constraint_violation: float = 0.0
    nit: int = 0
    nfev: int = 0
    status: int | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)

    def better_than(self, other: "OptimizationResult | None") -> bool:
        """Ordering used to merge multistart results: feasible beats
        infeasible; among feasible (or among infeasible), lower
        objective wins, with constraint violation as tie-breaker."""
        if other is None:
            return True
        if self.success != other.success:
            return self.success
        if self.success:
            return self.fun < other.fun
        return (self.constraint_violation, self.fun) < (other.constraint_violation, other.fun)
