"""Warm-start continuation sweeps over constraint grids.

Every trade-off figure in the paper (F3/F4/F5/F6/F9, the A4/T4 studies,
the F8 controller) is a sweep of *adjacent* optimization problems: the
same cluster and workload, one constraint value moving along a grid.
Solving each point cold re-pays the full multistart bill at every grid
value even though neighboring optima sit next to each other.

:func:`continuation_sweep` solves an ordered grid by **continuation**:
each point's solve is seeded with the previous point's optimum (the
``x0_hint`` / ``counts_hint`` threading in the P1/P2/P3 solvers), and
the solver's batch-scored multistart seeds act as the fallback — a warm
start that fails its acceptance guard degenerates to today's cold
solve, so the frontier *values* are unchanged while the solver effort
drops severalfold (see ``tests/test_sweep_continuation.py`` and the
``frontier_sweep_*`` kernels in ``repro bench``).

:func:`run_series` adds the orthogonal axis: a figure usually has
several *independent* series (the optimizer plus baselines), which can
run in parallel worker processes — the same backend policy as the
replication engine (:mod:`repro.simulation.parallel`): serial unless
``n_jobs`` asks for workers, automatic fallback when a payload cannot
cross a process boundary, and results keyed by series name so the
output is bit-identical for any worker count.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro import obs
from repro.exceptions import InfeasibleProblemError, ModelValidationError, UnstableSystemError

__all__ = ["SweepPoint", "ContinuationSweep", "continuation_sweep", "run_series"]


@dataclass
class SweepPoint:
    """One grid point of a continuation sweep.

    Attributes
    ----------
    value:
        The grid value (constraint level) this point was solved at.
    result:
        Whatever the ``solve`` callable returned, or ``None`` when the
        point raised one of the caught exceptions.
    warm:
        True when the solve was seeded with a hint from an earlier
        point (false for the first point and for cold sweeps).
    accepted:
        Whether the solver accepted the warm start (``None`` when the
        result does not report it, e.g. integer solvers).
    nfev, nit, n_evaluations:
        Solver-effort counters read off the result (0 when absent).
    wall_s:
        Wall-clock seconds spent in ``solve`` for this point.
    error:
        The caught exception for infeasible/unstable points.
    """

    value: Any
    result: Any
    warm: bool
    accepted: bool | None
    nfev: int
    nit: int
    n_evaluations: int
    wall_s: float
    error: Exception | None = None


@dataclass
class ContinuationSweep:
    """An ordered frontier: one :class:`SweepPoint` per grid value."""

    points: list[SweepPoint] = field(default_factory=list)
    label: str = ""

    @property
    def values(self) -> list[Any]:
        """The grid values in sweep order."""
        return [p.value for p in self.points]

    @property
    def results(self) -> list[Any]:
        """Per-point results (``None`` where the point failed)."""
        return [p.result for p in self.points]

    @property
    def n_solved(self) -> int:
        """Points that produced a result."""
        return sum(1 for p in self.points if p.result is not None)

    @property
    def total_evaluations(self) -> int:
        """Total objective/feasibility evaluations across the sweep —
        the headline continuation-vs-cold efficiency metric."""
        return sum(p.n_evaluations for p in self.points)

    @property
    def total_nfev(self) -> int:
        """Total winning-start SLSQP function evaluations."""
        return sum(p.nfev for p in self.points)

    @property
    def total_wall_s(self) -> float:
        """Total solve wall-clock across the sweep."""
        return sum(p.wall_s for p in self.points)

    def column(self, extract: Callable[[Any], float], default: float = float("nan")) -> np.ndarray:
        """Map ``extract`` over the results into a float column,
        filling failed points with ``default`` (NaN)."""
        out = []
        for p in self.points:
            out.append(default if p.result is None else float(extract(p.result)))
        return np.array(out)


def _as_float(value: Any) -> float | None:
    """``value`` as a plain float when it is scalar-like, else None.

    Grid values are usually floats (budgets, bounds, loads); telemetry
    consumers (the run store's frontier overlays) need them numeric,
    while exotic grid values (tuples, configs) stay repr-only.
    """
    if isinstance(value, (bool, np.bool_)):
        return None
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    return None


def _objective_of(result: Any) -> float | None:
    """The scalar objective of one solved point, if it exposes one
    (``fun`` for the continuous solvers, ``total_cost`` for P3)."""
    for attr in ("fun", "total_cost"):
        v = getattr(result, attr, None)
        if v is not None:
            try:
                return float(v)
            except (TypeError, ValueError):
                return None
    return None


def continuation_sweep(
    solve: Callable[[Any, Any | None], Any],
    grid: Iterable[Any],
    warm_start: bool = True,
    hint_of: Callable[[Any], Any] | None = None,
    catch: tuple[type[Exception], ...] = (InfeasibleProblemError, UnstableSystemError),
    label: str = "",
) -> ContinuationSweep:
    """Solve an ordered grid of constraint values by continuation.

    Parameters
    ----------
    solve:
        ``solve(value, hint)`` solves one grid point; ``hint`` is
        ``None`` for the first point and for cold sweeps, otherwise the
        previous successful point's optimum. The callable decides what
        a hint means (``x0_hint`` for the continuous solvers,
        ``counts_hint`` for P3).
    grid:
        Ordered constraint values. Order matters: continuation assumes
        neighboring values have neighboring optima, so sweep
        monotonically.
    warm_start:
        ``False`` solves every point cold (the comparison baseline —
        the bench ``frontier_sweep_cold`` kernel and the equivalence
        tests run exactly this).
    hint_of:
        Extracts the next hint from a result; defaults to the
        ``x`` attribute (``OptimizationResult``), with ``server_counts``
        (``CostAllocation``) as fallback.
    catch:
        Exceptions recorded as failed points instead of aborting the
        sweep (the hint then carries over from the last good point).
    label:
        Telemetry label; each point emits a ``sweep.point`` event.
    """
    if hint_of is None:
        def hint_of(result: Any) -> Any:
            x = getattr(result, "x", None)
            if x is not None:
                return x
            return getattr(result, "server_counts", None)

    out = ContinuationSweep(label=label)
    hint: Any = None
    grid = list(grid)
    with obs.span("sweep.run", label=label, warm=warm_start):
        for value in grid:
            t0 = time.perf_counter()
            error: Exception | None = None
            try:
                result = solve(value, hint if warm_start else None)
            except catch as exc:
                result, error = None, exc
            wall = time.perf_counter() - t0
            accepted = None
            if result is not None:
                meta = getattr(result, "meta", None)
                if isinstance(meta, dict) and "warm_start" in meta:
                    accepted = bool(meta["warm_start"]["accepted"])
            point = SweepPoint(
                value=value,
                result=result,
                warm=bool(warm_start and hint is not None),
                accepted=accepted,
                nfev=int(getattr(result, "nfev", 0) or 0),
                nit=int(getattr(result, "nit", 0) or 0),
                n_evaluations=int(getattr(result, "n_evaluations", 0) or 0),
                wall_s=wall,
                error=error,
            )
            out.points.append(point)
            obs.event(
                "sweep.point",
                label=label,
                value=repr(value),
                value_num=_as_float(value),
                fun=_objective_of(result),
                index=len(out.points) - 1,
                n_total=len(grid),
                warm=point.warm,
                accepted=accepted,
                n_evaluations=point.n_evaluations,
                failed=result is None,
                wall_s=wall,
            )
            if result is not None and warm_start:
                new_hint = hint_of(result)
                if new_hint is not None:
                    hint = np.array(new_hint, copy=True)
    obs.counter("sweep.points").add(len(out.points))
    return out


def _run_task(payload: tuple[str, Callable[..., Any], tuple[Any, ...]]) -> tuple[str, Any]:
    """Worker entry point: one named series. Module-level so a
    :class:`ProcessPoolExecutor` can pickle it."""
    name, fn, args = payload
    return name, fn(*args)


def run_series(
    tasks: Mapping[str, tuple[Callable[..., Any], Sequence[Any]]],
    n_jobs: int | None = None,
) -> dict[str, Any]:
    """Run independent named series, optionally in worker processes.

    Parameters
    ----------
    tasks:
        ``{name: (fn, args)}`` — each ``fn(*args)`` computes one series
        (e.g. the optimal frontier vs. a baseline). Functions must be
        module-level (picklable) for the parallel path; closures fall
        back to serial execution, same as the replication engine.
    n_jobs:
        Worker processes (:func:`repro.simulation.parallel.resolve_n_jobs`
        semantics: ``None``/``1`` serial, ``-1`` all cores).

    Returns
    -------
    dict
        ``{name: series_result}`` in task insertion order — identical
        for any worker count, since every series is independent and
        results are keyed by name, never by completion order.
    """
    from repro.simulation.parallel import payload_is_picklable, resolve_n_jobs

    if not tasks:
        raise ModelValidationError("run_series needs at least one task")
    payloads = [(name, fn, tuple(args)) for name, (fn, args) in tasks.items()]
    n = resolve_n_jobs(n_jobs)
    parallel = n > 1 and len(payloads) > 1 and all(payload_is_picklable(p) for p in payloads)
    results: dict[str, Any] = {}
    with obs.span("sweep.series", n_tasks=len(payloads), n_jobs=n, parallel=parallel):
        if parallel:
            with ProcessPoolExecutor(max_workers=min(n, len(payloads))) as pool:
                for name, value in pool.map(_run_task, payloads):
                    results[name] = value
        else:
            for payload in payloads:
                name, value = _run_task(payload)
                results[name] = value
    return {p[0]: results[p[0]] for p in payloads}
