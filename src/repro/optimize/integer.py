"""Integer allocation search for the P3 cost minimizer.

The decision is a vector of per-tier server counts. The searches below
assume only that *adding servers anywhere never hurts feasibility*
(delays are non-increasing in every ``c_i``), which holds for every
queueing formula in the library.

``greedy_integer_allocation`` grows from a lower-bound allocation,
always buying the cheapest unit of "most infeasibility relief per
dollar" until feasible; ``integer_local_search`` then tries to remove
or swap servers while staying feasible. Exhaustive certification for
small instances lives in :mod:`repro.baselines.exhaustive`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import InfeasibleProblemError, ModelValidationError

__all__ = ["greedy_integer_allocation", "integer_local_search"]

# (feasible, score): score is the max SLA violation when infeasible
# (lower = closer to feasible), arbitrary when feasible.
EvalFn = Callable[[np.ndarray], tuple[bool, float]]
CostFn = Callable[[np.ndarray], float]


def greedy_integer_allocation(
    evaluate: EvalFn,
    cost: CostFn,
    lower: Sequence[int],
    upper: Sequence[int],
    max_steps: int = 10_000,
    start: Sequence[int] | None = None,
) -> np.ndarray:
    """Grow an allocation until feasible, greedily by relief-per-cost.

    Parameters
    ----------
    evaluate:
        Maps a count vector to ``(feasible, violation_score)``; the
        score must be ``<= 0`` exactly when feasible and decrease as
        the configuration gets closer to feasibility.
    cost:
        Total cost of a count vector (used to rank candidate
        increments).
    lower, upper:
        Per-tier inclusive bounds on counts; the search starts at
        ``lower`` unless ``start`` overrides it.
    start:
        Optional warm-start counts (clipped into ``[lower, upper]``) —
        e.g. the optimum of a neighboring sweep point, from which a few
        greedy steps usually restore feasibility.

    Raises
    ------
    InfeasibleProblemError
        If even the all-``upper`` allocation is infeasible.
    """
    lo = np.asarray(lower, dtype=int)
    hi = np.asarray(upper, dtype=int)
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ModelValidationError("lower/upper must be 1-D and congruent")
    if np.any(lo < 1) or np.any(hi < lo):
        raise ModelValidationError(f"need 1 <= lower <= upper, got {lo} / {hi}")

    feasible_hi, _ = evaluate(hi.copy())
    if not feasible_hi:
        raise InfeasibleProblemError(
            f"even the maximal allocation {hi.tolist()} violates the SLA"
        )

    current = lo.copy() if start is None else np.clip(np.asarray(start, dtype=int), lo, hi)
    feasible, score = evaluate(current)
    steps = 0
    while not feasible:
        steps += 1
        if steps > max_steps:  # pragma: no cover - defensive
            raise InfeasibleProblemError("greedy allocation exceeded step budget")
        best_idx, best_gain = -1, -np.inf
        for i in range(current.size):
            if current[i] >= hi[i]:
                continue
            trial = current.copy()
            trial[i] += 1
            _, trial_score = evaluate(trial)
            delta_cost = cost(trial) - cost(current)
            relief = score - trial_score
            gain = relief / delta_cost if delta_cost > 0 else relief
            if gain > best_gain:
                best_gain, best_idx = gain, i
        if best_idx < 0:
            # No coordinate can grow further yet all-upper was feasible:
            # can only happen if evaluate is non-monotone; fall back to hi.
            current = hi.copy()
            feasible, score = evaluate(current)
            break
        current[best_idx] += 1
        feasible, score = evaluate(current)
    return current


def integer_local_search(
    start: Sequence[int],
    evaluate: EvalFn,
    cost: CostFn,
    lower: Sequence[int],
    upper: Sequence[int],
    max_rounds: int = 100,
) -> np.ndarray:
    """Cost-descent local search from a feasible allocation.

    Moves, tried cheapest-first each round until none improves:

    * remove one server from a tier (stay feasible, always cheaper),
    * swap: remove one server from an expensive tier and add one to a
      cheaper tier (net cost decrease only).
    """
    current = np.asarray(start, dtype=int).copy()
    lo = np.asarray(lower, dtype=int)
    hi = np.asarray(upper, dtype=int)
    feasible, _ = evaluate(current)
    if not feasible:
        raise ModelValidationError(f"local search must start feasible, got {current.tolist()}")

    for _ in range(max_rounds):
        improved = False
        # Deletions, most expensive tier first so big savings are tried early.
        order = np.argsort([-cost(_unit(current.size, i)) for i in range(current.size)])
        for i in order:
            if current[i] <= lo[i]:
                continue
            trial = current.copy()
            trial[i] -= 1
            ok, _ = evaluate(trial)
            if ok:
                current = trial
                improved = True
        if improved:
            continue
        # Swaps.
        for i in range(current.size):
            if current[i] <= lo[i]:
                continue
            for j in range(current.size):
                if j == i or current[j] >= hi[j]:
                    continue
                trial = current.copy()
                trial[i] -= 1
                trial[j] += 1
                if cost(trial) >= cost(current):
                    continue
                ok, _ = evaluate(trial)
                if ok:
                    current = trial
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return current


def _unit(n: int, i: int) -> np.ndarray:
    e = np.zeros(n, dtype=int)
    e[i] = 1
    return e
