"""Monotone one-dimensional threshold search."""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import InfeasibleProblemError, ModelValidationError

__all__ = ["bisect_threshold"]


def bisect_threshold(
    predicate: Callable[[float], bool],
    lo: float,
    hi: float,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float:
    """Smallest ``x`` in ``[lo, hi]`` with ``predicate(x)`` true.

    Requires the predicate to be monotone (false then true) on the
    interval — e.g. "does uniform speed ``x`` meet the delay bound?".

    Raises
    ------
    InfeasibleProblemError
        If ``predicate(hi)`` is false (no feasible point in range).
    """
    if hi < lo:
        raise ModelValidationError(f"empty interval [{lo}, {hi}]")
    if predicate(lo):
        return lo
    if not predicate(hi):
        raise InfeasibleProblemError(
            f"predicate is false on the whole interval [{lo}, {hi}]"
        )
    a, b = lo, hi
    for _ in range(max_iter):
        if b - a <= tol:
            break
        mid = 0.5 * (a + b)
        if predicate(mid):
            b = mid
        else:
            a = mid
    return b
