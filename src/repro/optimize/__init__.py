"""Generic optimization machinery shared by the paper's three problems.

* ``result``      — a uniform :class:`OptimizationResult` record.
* ``constrained`` — multistart nonlinear constrained minimization on a
                    box (SciPy SLSQP / trust-constr under the hood).
* ``integer``     — greedy + local-search integer allocation used by
                    the P3 cost minimizer.
* ``scalar``      — monotone bisection for one-dimensional feasibility
                    thresholds.
* ``sweep``       — warm-start continuation over constraint grids plus
                    parallel execution of independent series (the
                    frontier engine behind F3–F6/F9/A4/T4).
"""

from repro.optimize.result import OptimizationResult
from repro.optimize.constrained import Constraint, minimize_box_constrained, multistart_points
from repro.optimize.integer import greedy_integer_allocation, integer_local_search
from repro.optimize.scalar import bisect_threshold
from repro.optimize.sweep import ContinuationSweep, SweepPoint, continuation_sweep, run_series

__all__ = [
    "OptimizationResult",
    "Constraint",
    "minimize_box_constrained",
    "multistart_points",
    "greedy_integer_allocation",
    "integer_local_search",
    "bisect_threshold",
    "ContinuationSweep",
    "SweepPoint",
    "continuation_sweep",
    "run_series",
]
