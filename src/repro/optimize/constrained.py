"""Multistart box-constrained nonlinear minimization.

The paper's P1/P2 programs are smooth, low-dimensional (one speed per
tier) and mildly nonconvex, so the workhorse is SciPy's SLSQP run from
several deterministic starting points across the box, keeping the best
feasible outcome. Objectives are wrapped so that any
:class:`UnstableSystemError` escaping from the queueing formulas turns
into a large finite penalty instead of crashing the line search.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np
from scipy.optimize import minimize

from repro import obs
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.optimize.result import OptimizationResult

__all__ = ["Constraint", "minimize_box_constrained", "multistart_points"]

# Finite stand-in objective for points where the queueing model
# diverges; large enough to dominate any realistic delay/power value,
# small enough not to wreck SLSQP's internal scaling.
_PENALTY = 1e9

# Iteration budget of the warm-start attempt. An x0_hint taken from the
# neighboring point of a continuation sweep converges well inside this;
# a hint that needs more was a bad hint, and truncating it just routes
# the solve through the cold multistart fallback.
_WARM_MAXITER = 25


@dataclass(frozen=True)
class Constraint:
    """Inequality constraint ``fun(x) >= 0`` with a label for reports."""

    fun: Callable[[np.ndarray], float]
    name: str = "constraint"


def multistart_points(bounds: Sequence[tuple[float, float]], n_starts: int) -> np.ndarray:
    """Deterministic multistart seeds across a box.

    Returns the box midpoint, the near-lower and near-upper corners,
    and a low-discrepancy fill (scrambled-free Halton-like pattern from
    a fixed-seed generator) up to ``n_starts`` points. Deterministic so
    optimization results are reproducible run-to-run.
    """
    if n_starts < 1:
        raise ModelValidationError(f"n_starts must be >= 1, got {n_starts}")
    lo = np.array([b[0] for b in bounds])
    hi = np.array([b[1] for b in bounds])
    if np.any(hi < lo):
        raise ModelValidationError(f"empty box: lower {lo} exceeds upper {hi}")
    anchors = [0.5 * (lo + hi), lo + 0.05 * (hi - lo), hi - 0.05 * (hi - lo)]
    points = anchors[:n_starts]
    if n_starts > len(anchors):
        rng = np.random.default_rng(20110516)  # paper publication date
        extra = rng.uniform(lo, hi, size=(n_starts - len(anchors), lo.size))
        points = anchors + list(extra)
    return np.array(points)


def _safe(fun: Callable[[np.ndarray], float], counter: list[int] | None = None) -> Callable[[np.ndarray], float]:
    """Wrap a model evaluation so instability becomes a finite penalty."""

    def wrapped(x: np.ndarray) -> float:
        if counter is not None:
            counter[0] += 1
        try:
            v = float(fun(np.asarray(x, dtype=float)))
        except UnstableSystemError:
            return _PENALTY
        if not np.isfinite(v):
            return _PENALTY
        return v

    return wrapped


def minimize_box_constrained(
    objective: Callable[[np.ndarray], float],
    bounds: Sequence[tuple[float, float]],
    constraints: Sequence[Constraint] = (),
    n_starts: int = 5,
    feasibility_tol: float = 1e-6,
    method: str = "SLSQP",
    label: str = "",
    objective_batch: Callable[[np.ndarray], np.ndarray] | None = None,
    x0_hint: Sequence[float] | np.ndarray | None = None,
    constraint_batch: Callable[[np.ndarray], np.ndarray] | None = None,
) -> OptimizationResult:
    """Minimize ``objective`` over a box subject to ``g_j(x) >= 0``.

    Parameters
    ----------
    objective:
        Smooth objective; may raise :class:`UnstableSystemError` (turned
        into a penalty).
    bounds:
        Per-coordinate ``(low, high)`` box.
    constraints:
        Inequality constraints, each satisfied when ``fun(x) >= 0``.
    n_starts:
        Number of deterministic multistart seeds.
    feasibility_tol:
        Absolute slack below which a constraint counts as satisfied.
    method:
        ``"SLSQP"`` (default) or ``"trust-constr"``.
    label:
        Telemetry label for the solve (e.g. ``"p1"``); shows up in the
        ``optimize.solve`` span and the ``solver.result`` event.
    objective_batch:
        Optional vectorized objective: maps an ``(n, d)`` matrix of
        points to ``n`` objective values in one call (``inf`` allowed
        for divergent points). When given, all multistart seeds are
        evaluated in a single batched call and the local solver starts
        from the most promising seed first — the same starts are still
        all run, so the optimum found does not change, but the best
        incumbent is established early. See
        :class:`repro.core.batch_eval.BatchEvaluator`.
    x0_hint:
        Optional warm start (e.g. the optimum of the neighboring point
        on a constraint sweep — see :mod:`repro.optimize.sweep`).
        Clipped into the box and solved *first*; the warm solve is
        accepted — skipping the multistart loop entirely — only when it
        converged to a feasible point that beats every batch-scored
        multistart seed, so a failed warm start can never do worse than
        the cold solve (the warm candidate is merged into the
        multistart fallback). ``meta["warm_start"]`` records the
        outcome.
    constraint_batch:
        Optional vectorized constraint slack: maps an ``(n, d)`` matrix
        of points to the ``n`` *minimum* slacks ``min_j g_j(x_i)``
        (negative = infeasible). Used to exclude infeasible seeds from
        the warm-start acceptance guard; never used to decide final
        feasibility.

    Returns
    -------
    OptimizationResult
        Best point across starts; ``success`` requires feasibility at
        tolerance and solver convergence on at least one start. SciPy's
        per-start diagnostics (``nit``, ``nfev``, ``status``,
        ``message``) of the winning start are surfaced on the result,
        and ``meta["constraint_residuals"]`` maps each constraint name
        to its final slack ``g_j(x)`` (negative = violated).
    """
    evals = [0]
    safe_obj = _safe(objective, evals)
    scipy_constraints = [
        {"type": "ineq", "fun": _safe(c.fun)} for c in constraints
    ]
    # Clip bounds as ndarrays, built once per solve (not per start).
    lo_arr = np.array([b[0] for b in bounds], dtype=float)
    hi_arr = np.array([b[1] for b in bounds], dtype=float)

    starts = multistart_points(bounds, n_starts)
    seed_values: np.ndarray | None = None
    if objective_batch is not None and len(starts) > 1:
        # One vectorized call ranks every seed; SLSQP then runs
        # best-seed-first so the incumbent is strong from start one.
        seed_values = np.asarray(objective_batch(starts), dtype=float)
        if seed_values.shape != (len(starts),):
            raise ModelValidationError(
                f"objective_batch must return {len(starts)} values, "
                f"got shape {seed_values.shape}"
            )
        evals[0] += len(starts)
        obs.event(
            "optimize.batch_seeds",
            label=label,
            n_seeds=len(starts),
            best_seed_value=float(np.min(seed_values)),
        )

    # The warm-start acceptance bar: the best objective among *feasible*
    # multistart seeds. A converged cold start launched from that seed
    # can only land at or below its raw value, so a warm result beating
    # it is safe to accept without running the cold starts at all.
    guard_value: float | None = None
    if seed_values is not None:
        feasible_seeds = np.isfinite(seed_values)
        if constraint_batch is not None:
            slacks = np.asarray(constraint_batch(starts), dtype=float)
            if slacks.shape != (len(starts),):
                raise ModelValidationError(
                    f"constraint_batch must return {len(starts)} slacks, "
                    f"got shape {slacks.shape}"
                )
            feasible_seeds &= slacks >= -feasibility_tol
        if np.any(feasible_seeds):
            guard_value = float(np.min(seed_values[feasible_seeds]))
    if seed_values is not None:
        starts = starts[np.argsort(seed_values, kind="stable")]

    def violation(x: np.ndarray) -> float:
        worst = 0.0
        for c in constraints:
            try:
                g = float(c.fun(x))
            except UnstableSystemError:
                g = -_PENALTY
            worst = max(worst, -g)
        return worst

    def residuals(x: np.ndarray) -> dict[str, float]:
        out: dict[str, float] = {}
        for c in constraints:
            try:
                out[c.name] = float(c.fun(x))
            except UnstableSystemError:
                out[c.name] = -_PENALTY
        return out

    def attempt(x0: np.ndarray, maxiter: int | None = None) -> OptimizationResult:
        """One local solve from ``x0``, clipped back into the box."""
        if maxiter is None:
            maxiter = 200 if method == "SLSQP" else 300
        try:
            res = minimize(
                safe_obj,
                x0,
                method=method,
                bounds=bounds,
                constraints=scipy_constraints,
                options={"maxiter": maxiter, "ftol": 1e-10} if method == "SLSQP" else {"maxiter": maxiter},
            )
        except Exception as exc:  # pragma: no cover - scipy internal failures
            return OptimizationResult(
                x=x0, fun=_PENALTY, success=False, message=f"solver error: {exc}",
                n_evaluations=evals[0],
            )
        x = np.clip(res.x, lo_arr, hi_arr)
        viol = violation(x)
        return OptimizationResult(
            x=x,
            fun=safe_obj(x),
            success=bool(viol <= feasibility_tol and safe_obj(x) < _PENALTY),
            message=str(res.message),
            n_evaluations=evals[0],
            constraint_violation=viol,
            nit=int(getattr(res, "nit", 0) or 0),
            nfev=int(getattr(res, "nfev", 0) or 0),
            status=int(res.status) if getattr(res, "status", None) is not None else None,
        )

    best: OptimizationResult | None = None
    warm_info: dict[str, object] | None = None
    with obs.span(
        "optimize.solve",
        label=label,
        method=method,
        n_starts=n_starts,
        n_constraints=len(constraints),
        warm=x0_hint is not None,
    ) as sp:
        if x0_hint is not None:
            hint = np.asarray(x0_hint, dtype=float).ravel()
            if hint.shape != lo_arr.shape:
                raise ModelValidationError(
                    f"x0_hint must have {lo_arr.size} coordinates, got {hint.size}"
                )
            hint = np.clip(hint, lo_arr, hi_arr)
            # A genuine continuation step converges in a handful of
            # iterations; the cap bounds the cost of a bad hint. A
            # truncated attempt fails the convergence check and falls
            # back to the cold multistart — values unchanged.
            warm = attempt(hint, maxiter=_WARM_MAXITER)
            converged = bool(warm.success and warm.status == 0)
            accepted = converged and (
                guard_value is None or warm.fun <= guard_value + feasibility_tol
            )
            warm_info = {
                "accepted": accepted,
                "converged": converged,
                "fun": warm.fun,
                "guard_value": guard_value,
            }
            if accepted:
                best = warm
            elif warm.better_than(best):
                # Failed warm start: keep it as a candidate and fall
                # through to the full cold multistart loop below.
                best = warm
        if warm_info is None or not warm_info["accepted"]:
            for x0 in starts:
                candidate = attempt(x0)
                if candidate.better_than(best):
                    best = candidate
    assert best is not None  # n_starts >= 1 guarantees at least one candidate
    best.n_evaluations = evals[0]
    best.meta["constraint_residuals"] = residuals(best.x)
    if warm_info is not None:
        best.meta["warm_start"] = warm_info
    obs.event(
        "solver.result",
        label=label,
        method=method,
        success=best.success,
        fun=best.fun,
        nit=best.nit,
        nfev=best.nfev,
        status=best.status,
        message=best.message,
        n_evaluations=best.n_evaluations,
        constraint_violation=best.constraint_violation,
        warm_accepted=None if warm_info is None else warm_info["accepted"],
        wall_s=sp.wall_s,
    )
    obs.counter("opt.solves").inc()
    obs.counter("opt.evaluations").add(best.n_evaluations)
    return best
