"""Server on/off (consolidation) power management.

The classic alternative to DVFS speed scaling: keep servers at full
speed but power a subset of them *off*, saving their idle draw. With
``n_i <= c_i`` tiers active at maximum speed, the tier's average power
is

    P_i = n_i · P_idle,i + R_i · κ_i · s_max,i^{α_i − 1}

— the dynamic term is fixed (the work has to happen at ``s_max``), so
on/off attacks only the idle floor, whereas DVFS attacks only the
dynamic term. Which mechanism wins depends on the idle/dynamic power
split; ablation A4 maps the comparison (and their combination) against
a mean-delay constraint.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_energy import minimize_energy
from repro.exceptions import InfeasibleProblemError, UnstableSystemError
from repro.workload.classes import Workload

__all__ = ["min_power_onoff", "min_power_onoff_with_dvfs"]


def _delay_at(cluster_max: ClusterModel, workload: Workload, counts: np.ndarray) -> float:
    try:
        return mean_end_to_end_delay(cluster_max.with_servers(counts), workload)
    except UnstableSystemError:
        return float("inf")


def min_power_onoff(
    cluster: ClusterModel, workload: Workload, max_mean_delay: float
) -> tuple[np.ndarray, float]:
    """Fewest active servers (all at max speed) meeting the delay bound.

    Greedy removal: starting from all servers on, repeatedly switch off
    the server whose removal saves the most idle power while keeping
    the aggregate mean delay within the bound.

    Returns
    -------
    (active_counts, average_power)

    Raises
    ------
    InfeasibleProblemError
        If the bound cannot be met even with every server on.
    """
    at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
    counts = at_max.server_counts.copy()
    if _delay_at(at_max, workload, counts) > max_mean_delay:
        raise InfeasibleProblemError(
            f"mean-delay bound {max_mean_delay:.6g}s unreachable even with all "
            f"{counts.tolist()} servers on at maximum speed"
        )
    idle = np.array([t.spec.power.idle for t in at_max.tiers])
    improved = True
    while improved:
        improved = False
        # Try switching off at the tier with the largest idle draw first.
        for i in np.argsort(-idle):
            if counts[i] <= 1:
                continue
            trial = counts.copy()
            trial[i] -= 1
            if _delay_at(at_max, workload, trial) <= max_mean_delay:
                counts = trial
                improved = True
                break
    final = at_max.with_servers(counts)
    return counts, final.average_power(workload.arrival_rates)


def min_power_onoff_with_dvfs(
    cluster: ClusterModel, workload: Workload, max_mean_delay: float, n_starts: int = 3
) -> tuple[np.ndarray, np.ndarray, float]:
    """Combined mechanism: consolidate servers, then DVFS the rest.

    Runs the on/off greedy first, then P2a (speed optimization) on the
    reduced configuration, and finally checks whether keeping one more
    server per tier with slower speeds does better — a light local
    search over the count/speed interaction.

    Returns
    -------
    (active_counts, speeds, average_power)
    """
    counts, _ = min_power_onoff(cluster, workload, max_mean_delay)
    best = None
    # Candidates: the on/off optimum, single-server relaxations of it
    # (adding a server back lowers utilization, letting DVFS slow the
    # whole tier down), and the all-on configuration — including the
    # latter guarantees the combination is never worse than DVFS alone.
    candidates = [counts, cluster.server_counts.copy()]
    for i in range(counts.size):
        if counts[i] < cluster.server_counts[i]:
            trial = counts.copy()
            trial[i] += 1
            candidates.append(trial)
    for cand in candidates:
        reduced = cluster.with_servers(cand)
        try:
            res = minimize_energy(
                reduced, workload, max_mean_delay=max_mean_delay, n_starts=n_starts
            )
        except InfeasibleProblemError:
            continue
        if res.success and (best is None or res.meta["power"] < best[2]):
            best = (cand, res.x, float(res.meta["power"]))
    if best is None:
        # DVFS found nothing better than plain on/off at max speed.
        at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
        final = at_max.with_servers(counts)
        return counts, final.speeds, final.average_power(workload.arrival_rates)
    return best
