"""Baseline policies and certifiers the optimizers are measured against.

* ``uniform``      — a single shared speed for every tier, tuned by
                     bisection to exhaust a power budget (P1 baseline)
                     or to just meet a delay bound (P2 baseline).
* ``proportional`` — per-tier speeds proportional to offered load.
* ``single_class`` — the no-priority modelling baseline: all classes
                     aggregated into one FCFS flow (ablation A1).
* ``exhaustive``   — brute-force enumeration of P3 server allocations,
                     certifying the greedy+local-search optimum on
                     small instances (T3/T4).
* ``onoff``        — server consolidation (power servers off instead of
                     slowing them down), alone and combined with DVFS
                     (ablation A4).
"""

from repro.baselines.uniform import uniform_speed_for_budget, uniform_speed_for_delay
from repro.baselines.proportional import proportional_speed_for_budget
from repro.baselines.single_class import aggregate_fcfs_delays
from repro.baselines.exhaustive import exhaustive_cost_minimization
from repro.baselines.onoff import min_power_onoff, min_power_onoff_with_dvfs

__all__ = [
    "uniform_speed_for_budget",
    "uniform_speed_for_delay",
    "proportional_speed_for_budget",
    "aggregate_fcfs_delays",
    "exhaustive_cost_minimization",
    "min_power_onoff",
    "min_power_onoff_with_dvfs",
]
