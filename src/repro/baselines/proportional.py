"""Load-proportional speed baseline.

Every tier targets the same utilization; the shared utilization target
is tuned by bisection to exhaust a power budget. Smarter than the
uniform dial (a lightly loaded tier is not forced to a high speed) but
still blind to service-time variability and priority structure — the
gap to the P1 optimum is what experiment F3 reports.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.opt_common import DEFAULT_RHO_CAP, stability_speed_bounds
from repro.exceptions import InfeasibleProblemError
from repro.optimize.scalar import bisect_threshold
from repro.workload.classes import Workload

__all__ = ["proportional_speed_for_budget"]


def proportional_speed_for_budget(
    cluster: ClusterModel,
    workload: Workload,
    power_budget: float,
    rho_cap: float = DEFAULT_RHO_CAP,
    tol: float = 1e-9,
) -> np.ndarray:
    """Per-tier speeds ``s_i = R_i / (c_i ρ)`` at the smallest common
    utilization ``ρ`` affordable within the power budget, clamped into
    each tier's stable DVFS box.

    Raises
    ------
    InfeasibleProblemError
        If the budget is below the minimum stable power.
    """
    bounds = stability_speed_bounds(cluster, workload, rho_cap)
    lam = workload.arrival_rates
    work = cluster.work_rates(lam)
    counts = cluster.server_counts
    lo = np.array([b[0] for b in bounds])
    hi = np.array([b[1] for b in bounds])

    def speeds_at(rho: float) -> np.ndarray:
        return np.clip(work / (counts * rho), lo, hi)

    def over_budget(rho: float) -> bool:
        return cluster.with_speeds(speeds_at(rho)).average_power(lam) > power_budget

    # Lower rho = faster servers = more power. rho_cap is the slowest
    # stable setting; if that's over budget the problem is infeasible.
    if over_budget(rho_cap):
        raise InfeasibleProblemError(
            f"power budget {power_budget:.6g} W is below the minimum stable power"
        )
    tiny = 1e-6
    if not over_budget(tiny):
        return speeds_at(tiny)
    # Smallest utilization (fastest speeds) that still fits the budget:
    # over_budget is monotone decreasing in rho, so find the threshold.
    rho_star = bisect_threshold(lambda r: not over_budget(r), tiny, rho_cap, tol=tol)
    return speeds_at(rho_star)
