"""No-priority modelling baseline: aggregate all classes into one flow.

Before the paper's multi-class treatment, a provider would size the
cluster from a single-class model: sum the arrival rates, mix the
demand distributions, and compute one FCFS delay that every class is
assumed to experience. Ablation A1 measures how wrong that is per
class — the high-priority class's delay is grossly over-estimated and
the low-priority class's grossly under-estimated, which is precisely
the modelling gap the paper's priority formulas close.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError
from repro.queueing.networks import StationSpec, TandemNetwork
from repro.workload.classes import Workload

__all__ = ["aggregate_fcfs_delays"]


def aggregate_fcfs_delays(cluster: ClusterModel, workload: Workload) -> np.ndarray:
    """Per-class end-to-end delays predicted by the aggregate FCFS
    model (identical for every class, modulo their own service times).

    The aggregation replaces each tier's per-class service times by
    their λ-weighted mixture and drops the priority discipline.
    """
    if cluster.num_classes != workload.num_classes:
        raise ModelValidationError(
            f"cluster is parameterized for {cluster.num_classes} classes "
            f"but workload has {workload.num_classes}"
        )
    stations = [
        StationSpec(
            services=t.station_spec().services,
            servers=t.servers,
            discipline="fcfs",
            name=t.name,
        )
        for t in cluster.tiers
    ]
    network = TandemNetwork(stations, visit_ratios=cluster.visit_ratios)
    return network.end_to_end_delays(workload.arrival_rates)
