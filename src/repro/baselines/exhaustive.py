"""Exhaustive enumeration of P3 server allocations.

The certification baseline for T3/T4: enumerate every count vector in
the box, keep the cheapest SLA-feasible one. Exponential in the number
of tiers, so only run it on small instances — which is exactly its
job: proving the greedy + local-search answer optimal there, and
timing how much slower brute force is.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.feasibility import sla_feasibility
from repro.core.sla import SLA
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.workload.classes import Workload

__all__ = ["exhaustive_cost_minimization"]


def exhaustive_cost_minimization(
    cluster: ClusterModel,
    workload: Workload,
    sla: SLA,
    max_servers_per_tier: int = 12,
) -> tuple[np.ndarray, float, int]:
    """Brute-force optimal P3 allocation (counts at maximum speeds).

    Returns
    -------
    (counts, cost, n_evaluations)
        The cheapest feasible count vector, its cost and how many
        configurations were evaluated.

    Raises
    ------
    InfeasibleProblemError
        If no configuration within the box meets the SLA.
    ModelValidationError
        If the search space exceeds 10^7 configurations (use the
        greedy optimizer instead).
    """
    if max_servers_per_tier < 1:
        raise ModelValidationError(f"max_servers_per_tier must be >= 1, got {max_servers_per_tier}")
    space = max_servers_per_tier ** cluster.num_tiers
    if space > 10_000_000:
        raise ModelValidationError(
            f"exhaustive search space {space} too large; reduce tiers or the per-tier cap"
        )
    at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
    costs = np.array([t.spec.cost for t in at_max.tiers])

    best_counts: np.ndarray | None = None
    best_cost = np.inf
    evals = 0
    for combo in product(range(1, max_servers_per_tier + 1), repeat=cluster.num_tiers):
        counts = np.array(combo, dtype=int)
        cost = float(np.dot(counts, costs))
        if cost >= best_cost:
            continue  # cannot improve; skip the expensive evaluation
        evals += 1
        feasible, _ = sla_feasibility(at_max.with_servers(counts), workload, sla)
        if feasible:
            best_cost = cost
            best_counts = counts
    if best_counts is None:
        raise InfeasibleProblemError(
            f"no allocation with at most {max_servers_per_tier} servers per tier meets the SLA"
        )
    return best_counts, best_cost, evals
