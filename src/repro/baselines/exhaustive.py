"""Exhaustive enumeration of P3 server allocations.

The certification baseline for T3/T4: enumerate every count vector in
the box, keep the cheapest SLA-feasible one. Exponential in the number
of tiers, so only run it on small instances — which is exactly its
job: proving the greedy + local-search answer optimal there, and
timing how much slower brute force is.

When the SLA carries only mean-delay guarantees (the common case and
every shipped experiment), the grid is evaluated through
:class:`repro.core.batch_eval.BatchEvaluator` — all count vectors'
end-to-end delays in a few chunked array operations — and the scalar
cost-prune loop is then replayed over the precomputed feasibility
flags, so the returned ``(counts, cost, n_evaluations)`` triple is
identical to the one-model-per-combination path it replaced.
Percentile-bearing SLAs fall back to that scalar path (the percentile
approximation has no batched form yet).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro import obs
from repro.cluster.model import ClusterModel
from repro.core.batch_eval import BatchEvaluator
from repro.core.feasibility import sla_feasibility
from repro.core.sla import SLA
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.workload.classes import Workload

__all__ = ["exhaustive_cost_minimization"]

#: Candidates per vectorized evaluation chunk — bounds peak memory of
#: the (chunk, tiers, classes) intermediate at a few MB.
_CHUNK = 32768


def exhaustive_cost_minimization(
    cluster: ClusterModel,
    workload: Workload,
    sla: SLA,
    max_servers_per_tier: int = 12,
) -> tuple[np.ndarray, float, int]:
    """Brute-force optimal P3 allocation (counts at maximum speeds).

    Returns
    -------
    (counts, cost, n_evaluations)
        The cheapest feasible count vector, its cost and how many
        configurations were evaluated (i.e. survived the cost prune —
        the count is identical between the vectorized and scalar
        paths).

    Raises
    ------
    InfeasibleProblemError
        If no configuration within the box meets the SLA.
    ModelValidationError
        If the search space exceeds 10^7 configurations (use the
        greedy optimizer instead).
    """
    if max_servers_per_tier < 1:
        raise ModelValidationError(f"max_servers_per_tier must be >= 1, got {max_servers_per_tier}")
    space = max_servers_per_tier ** cluster.num_tiers
    if space > 10_000_000:
        raise ModelValidationError(
            f"exhaustive search space {space} too large; reduce tiers or the per-tier cap"
        )
    at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
    costs = np.array([t.spec.cost for t in at_max.tiers])

    with obs.span(
        "baseline.exhaustive",
        space=space,
        vectorized=not sla.has_percentiles,
    ):
        if not sla.has_percentiles:
            return _vectorized_search(at_max, workload, sla, max_servers_per_tier, costs)
        return _scalar_search(at_max, workload, sla, max_servers_per_tier, costs)


def _vectorized_search(
    at_max: ClusterModel,
    workload: Workload,
    sla: SLA,
    cap: int,
    costs: np.ndarray,
) -> tuple[np.ndarray, float, int]:
    """Batched grid evaluation + exact replay of the cost-prune loop."""
    m = at_max.num_tiers
    # Count vectors in itertools.product order (last tier fastest).
    axes = np.meshgrid(*([np.arange(1, cap + 1)] * m), indexing="ij")
    combos = np.stack([ax.ravel() for ax in axes], axis=1)
    combo_costs = combos @ costs
    evaluator = BatchEvaluator(at_max, workload)
    bounds = sla.delay_bounds(workload)
    speeds = np.array([t.speed for t in at_max.tiers])
    n = combos.shape[0]
    feasible = np.empty(n, dtype=bool)
    for i in range(0, n, _CHUNK):
        chunk = combos[i : i + _CHUNK]
        delays = evaluator.end_to_end_delays(
            np.broadcast_to(speeds, chunk.shape), chunk
        )
        # Mean-delay SLA: feasible iff every class bound holds
        # (unstable candidates have inf delays and fail here), exactly
        # sla_feasibility's score <= 0 for percentile-free SLAs.
        feasible[i : i + _CHUNK] = np.all(delays <= bounds[None, :], axis=1)
    # Replay the scalar prune over the precomputed flags so the
    # evaluation count (and any cost-tie outcome) is bit-identical.
    best_cost = np.inf
    best_idx = -1
    evals = 0
    cost_list = combo_costs.tolist()
    feas_list = feasible.tolist()
    for j in range(n):
        cost = cost_list[j]
        if cost >= best_cost:
            continue
        evals += 1
        if feas_list[j]:
            best_cost = cost
            best_idx = j
    if best_idx < 0:
        raise InfeasibleProblemError(
            f"no allocation with at most {cap} servers per tier meets the SLA"
        )
    return combos[best_idx].copy(), float(best_cost), evals


def _scalar_search(
    at_max: ClusterModel,
    workload: Workload,
    sla: SLA,
    cap: int,
    costs: np.ndarray,
) -> tuple[np.ndarray, float, int]:
    """One model evaluation per surviving combination (percentile SLAs)."""
    best_counts: np.ndarray | None = None
    best_cost = np.inf
    evals = 0
    for combo in product(range(1, cap + 1), repeat=at_max.num_tiers):
        counts = np.array(combo, dtype=int)
        cost = float(np.dot(counts, costs))
        if cost >= best_cost:
            continue  # cannot improve; skip the expensive evaluation
        evals += 1
        feasible, _ = sla_feasibility(at_max.with_servers(counts), workload, sla)
        if feasible:
            best_cost = cost
            best_counts = counts
    if best_counts is None:
        raise InfeasibleProblemError(
            f"no allocation with at most {cap} servers per tier meets the SLA"
        )
    return best_counts, best_cost, evals
