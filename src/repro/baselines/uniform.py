"""Uniform-speed baselines.

The simplest power-management policy a provider could run: one speed
knob shared by every tier. Because cluster power is strictly
increasing and delay strictly decreasing in that knob, both baseline
tunings are one-dimensional monotone searches.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_common import DEFAULT_RHO_CAP, stability_speed_bounds
from repro.exceptions import InfeasibleProblemError
from repro.optimize.scalar import bisect_threshold
from repro.workload.classes import Workload

__all__ = ["uniform_speed_for_budget", "uniform_speed_for_delay"]


def _uniform_box(cluster: ClusterModel, workload: Workload, rho_cap: float) -> tuple[float, float]:
    """The interval of *uniform* speed multipliers that keep every tier
    stable and inside its DVFS range. The knob is a fraction ``u`` in
    [0, 1]; tier ``i`` runs at ``lo_i + u (hi_i - lo_i)``."""
    bounds = stability_speed_bounds(cluster, workload, rho_cap)
    return bounds  # type: ignore[return-value]


def _speeds_at(bounds: list[tuple[float, float]], u: float) -> np.ndarray:
    lo = np.array([b[0] for b in bounds])
    hi = np.array([b[1] for b in bounds])
    return lo + u * (hi - lo)


def uniform_speed_for_budget(
    cluster: ClusterModel,
    workload: Workload,
    power_budget: float,
    rho_cap: float = DEFAULT_RHO_CAP,
    tol: float = 1e-9,
) -> np.ndarray:
    """Fastest uniform setting whose average power fits the budget.

    All tiers share one dial ``u ∈ [0, 1]`` interpolating between their
    slowest-stable and maximum speeds; returns the per-tier speeds at
    the largest affordable ``u`` (the P1 baseline spends the budget
    without per-tier intelligence).

    Raises
    ------
    InfeasibleProblemError
        If even ``u = 0`` (slowest stable speeds) exceeds the budget.
    """
    bounds = stability_speed_bounds(cluster, workload, rho_cap)
    lam = workload.arrival_rates

    def over_budget(u: float) -> bool:
        return cluster.with_speeds(_speeds_at(bounds, u)).average_power(lam) > power_budget

    if over_budget(0.0):
        raise InfeasibleProblemError(
            f"power budget {power_budget:.6g} W is below the minimum stable power"
        )
    if not over_budget(1.0):
        return _speeds_at(bounds, 1.0)
    # Smallest u that exceeds the budget, then step just below it.
    u_star = bisect_threshold(over_budget, 0.0, 1.0, tol=tol)
    return _speeds_at(bounds, max(u_star - tol, 0.0))


def uniform_speed_for_delay(
    cluster: ClusterModel,
    workload: Workload,
    max_mean_delay: float,
    rho_cap: float = DEFAULT_RHO_CAP,
    tol: float = 1e-9,
) -> np.ndarray:
    """Slowest uniform setting meeting an aggregate mean-delay bound —
    the uniform P2a baseline (cheapest energy without per-tier
    intelligence).

    Raises
    ------
    InfeasibleProblemError
        If the bound is unreachable even at maximum speeds.
    """
    bounds = stability_speed_bounds(cluster, workload, rho_cap)

    def meets(u: float) -> bool:
        return mean_end_to_end_delay(cluster.with_speeds(_speeds_at(bounds, u)), workload) <= max_mean_delay

    u_star = bisect_threshold(meets, 0.0, 1.0, tol=tol)
    return _speeds_at(bounds, u_star)
