"""Exponential distribution — the memoryless workhorse of the model.

The paper's analytic cluster model treats arrivals as Poisson (i.e.
exponential interarrival times) and, in the exact M/M/c-priority case,
service demands as exponential as well.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["Exponential"]


class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1 / rate``).

    Parameters
    ----------
    rate:
        The rate parameter ``λ > 0``.

    Examples
    --------
    >>> d = Exponential(rate=2.0)
    >>> d.mean
    0.5
    >>> round(d.scv, 12)
    1.0
    """

    block_sampling_safe = True

    def __init__(self, rate: float):
        if rate <= 0.0 or not np.isfinite(rate):
            raise ModelValidationError(f"Exponential rate must be positive and finite, got {rate}")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Construct from the mean instead of the rate."""
        if mean <= 0.0 or not np.isfinite(mean):
            raise ModelValidationError(f"Exponential mean must be positive and finite, got {mean}")
        return cls(rate=1.0 / mean)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def second_moment(self) -> float:
        return 2.0 / self.rate**2

    @property
    def third_moment(self) -> float:
        return 6.0 / self.rate**3

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.exponential(scale=1.0 / self.rate, size=size)

    def scaled(self, factor: float) -> "Exponential":
        """``c * Exp(rate)`` is exactly ``Exp(rate / c)``."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Exponential(self.rate / factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Exponential(rate={self.rate:.6g})"
