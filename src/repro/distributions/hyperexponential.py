"""Hyperexponential distribution (probabilistic mixture of exponentials).

The standard model for high-variability service demands (``scv > 1``):
a request is "small" with probability ``p_1`` and "large" with
probability ``p_2``, each branch exponentially distributed. Enterprise
request mixes — the paper's motivating workload — are classically
hyperexponential.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["HyperExponential"]


class HyperExponential(Distribution):
    """Mixture of exponentials: with probability ``probs[i]`` the sample
    is ``Exp(rates[i])``.

    Parameters
    ----------
    probs:
        Branch probabilities; must be positive and sum to 1 (within
        1e-9, then renormalized exactly).
    rates:
        Branch rates, same length as ``probs``, all positive.
    """

    def __init__(self, probs: Sequence[float], rates: Sequence[float]):
        probs_arr = np.asarray(probs, dtype=float)
        rates_arr = np.asarray(rates, dtype=float)
        if probs_arr.ndim != 1 or probs_arr.shape != rates_arr.shape or probs_arr.size == 0:
            raise ModelValidationError("probs and rates must be equal-length non-empty 1-D sequences")
        if np.any(probs_arr <= 0.0):
            raise ModelValidationError(f"branch probabilities must be positive, got {probs_arr}")
        if abs(probs_arr.sum() - 1.0) > 1e-9:
            raise ModelValidationError(f"branch probabilities must sum to 1, got {probs_arr.sum()}")
        if np.any(rates_arr <= 0.0) or not np.all(np.isfinite(rates_arr)):
            raise ModelValidationError(f"branch rates must be positive and finite, got {rates_arr}")
        self.probs = probs_arr / probs_arr.sum()
        self.rates = rates_arr
        # Precomputed branch CDF and scales for the scalar fast path:
        # Generator.choice(n, p=p) internally draws one uniform double
        # and inverts the normalized cumsum of p, so searchsorted on the
        # same cumsum consumes the bit stream identically — without
        # choice()'s per-call setup (validation, pop-size checks, array
        # boxing), which dominated profiles of hyperexponential-heavy
        # simulations.
        cdf = self.probs.cumsum()
        cdf /= cdf[-1]
        self._cdf = cdf
        self._scales = (1.0 / self.rates).tolist()

    @classmethod
    def balanced_from_mean_scv(cls, mean: float, scv: float) -> "HyperExponential":
        """Two-branch H2 with balanced means matching ``(mean, scv)``.

        The *balanced means* condition ``p1/rate1 == p2/rate2`` pins
        down the third degree of freedom; requires ``scv >= 1``.
        This is the textbook two-moment fit used throughout the
        experiment harness for high-variability demands.
        """
        if mean <= 0.0:
            raise ModelValidationError(f"mean must be positive, got {mean}")
        if scv < 1.0:
            raise ModelValidationError(f"H2 balanced-means fit requires scv >= 1, got {scv}")
        if scv == 1.0:
            # Degenerates to exponential; keep two identical branches so
            # the type is uniform for callers.
            return cls(probs=[0.5, 0.5], rates=[1.0 / mean, 1.0 / mean])
        root = np.sqrt((scv - 1.0) / (scv + 1.0))
        p1 = 0.5 * (1.0 + root)
        p2 = 1.0 - p1
        rate1 = 2.0 * p1 / mean
        rate2 = 2.0 * p2 / mean
        return cls(probs=[p1, p2], rates=[rate1, rate2])

    @property
    def mean(self) -> float:
        return float(np.sum(self.probs / self.rates))

    @property
    def second_moment(self) -> float:
        return float(np.sum(2.0 * self.probs / self.rates**2))

    @property
    def third_moment(self) -> float:
        return float(np.sum(6.0 * self.probs / self.rates**3))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            # Scalar fast path: branch choice by CDF inversion (one
            # uniform) then scale * standard exponential — both steps
            # bit-identical to choice(p=probs) + exponential(scale=...)
            # while skipping their per-call overhead.
            branch = int(self._cdf.searchsorted(rng.random(), side="right"))
            return self._scales[branch] * rng.standard_exponential()
        branches = rng.choice(self.rates.size, p=self.probs, size=size)
        return rng.exponential(scale=1.0 / self.rates[branches])

    def scaled(self, factor: float) -> "HyperExponential":
        """Scaling rescales every branch rate (family is closed)."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return HyperExponential(probs=self.probs.tolist(), rates=(self.rates / factor).tolist())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HyperExponential(probs={self.probs.tolist()}, rates={self.rates.tolist()})"
