"""Weibull distribution."""

from __future__ import annotations

import numpy as np
from scipy.special import gamma as gamma_fn

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["Weibull"]


class Weibull(Distribution):
    """Weibull with shape ``k > 0`` and scale ``lam > 0``.

    ``E[X^n] = lam^n * Gamma(1 + n/k)``. Shape below 1 gives a
    decreasing hazard (heavy-ish tail), above 1 an increasing hazard.
    """

    block_sampling_safe = True

    def __init__(self, k: float, lam: float):
        if k <= 0.0 or not np.isfinite(k):
            raise ModelValidationError(f"Weibull shape must be positive and finite, got {k}")
        if lam <= 0.0 or not np.isfinite(lam):
            raise ModelValidationError(f"Weibull scale must be positive and finite, got {lam}")
        self.k = float(k)
        self.lam = float(lam)

    @classmethod
    def from_mean(cls, mean: float, k: float) -> "Weibull":
        """Weibull with the given mean and shape."""
        if mean <= 0.0:
            raise ModelValidationError(f"mean must be positive, got {mean}")
        lam = mean / gamma_fn(1.0 + 1.0 / k)
        return cls(k=k, lam=lam)

    @property
    def mean(self) -> float:
        return self.lam * float(gamma_fn(1.0 + 1.0 / self.k))

    @property
    def second_moment(self) -> float:
        return self.lam**2 * float(gamma_fn(1.0 + 2.0 / self.k))

    @property
    def third_moment(self) -> float:
        return self.lam**3 * float(gamma_fn(1.0 + 3.0 / self.k))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.lam * rng.weibull(self.k, size=size)

    def scaled(self, factor: float) -> "Weibull":
        """Scaling rescales lambda (family is closed)."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Weibull(k=self.k, lam=self.lam * factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Weibull(k={self.k:.6g}, lam={self.lam:.6g})"
