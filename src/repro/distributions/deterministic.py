"""Deterministic (constant) distribution.

A degenerate distribution with SCV 0 — the low-variability extreme used
in the M/G/1 experiments to show how the Pollaczek–Khinchine waiting
time halves relative to exponential service.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["Deterministic"]


class Deterministic(Distribution):
    """Point mass at ``value >= 0``.

    Examples
    --------
    >>> Deterministic(3.0).scv
    0.0
    """

    block_sampling_safe = True

    def __init__(self, value: float):
        if value < 0.0 or not np.isfinite(value):
            raise ModelValidationError(f"Deterministic value must be non-negative and finite, got {value}")
        self.value = float(value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def second_moment(self) -> float:
        return self.value**2

    @property
    def third_moment(self) -> float:
        return self.value**3

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return self.value
        return np.full(size, self.value)

    def scaled(self, factor: float) -> "Deterministic":
        """A scaled constant is a constant."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Deterministic(self.value * factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deterministic({self.value:.6g})"
