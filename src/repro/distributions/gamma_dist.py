"""Gamma distribution (continuous-shape generalization of Erlang)."""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["Gamma"]


class Gamma(Distribution):
    """Gamma with shape ``k > 0`` and rate ``rate > 0``.

    Mean ``k / rate``, SCV ``1 / k`` — spans the full low-variability
    band with a continuous shape parameter, unlike Erlang's integer
    stages.
    """

    block_sampling_safe = True

    def __init__(self, k: float, rate: float):
        if k <= 0.0 or not np.isfinite(k):
            raise ModelValidationError(f"Gamma shape must be positive and finite, got {k}")
        if rate <= 0.0 or not np.isfinite(rate):
            raise ModelValidationError(f"Gamma rate must be positive and finite, got {rate}")
        self.k = float(k)
        self.rate = float(rate)

    @classmethod
    def from_mean_scv(cls, mean: float, scv: float) -> "Gamma":
        """Gamma matching ``(mean, scv)`` exactly (``k = 1/scv``)."""
        if mean <= 0.0 or scv <= 0.0:
            raise ModelValidationError(f"mean and scv must be positive, got mean={mean}, scv={scv}")
        k = 1.0 / scv
        return cls(k=k, rate=k / mean)

    @property
    def mean(self) -> float:
        return self.k / self.rate

    @property
    def second_moment(self) -> float:
        return self.k * (self.k + 1.0) / self.rate**2

    @property
    def third_moment(self) -> float:
        return self.k * (self.k + 1.0) * (self.k + 2.0) / self.rate**3

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.gamma(shape=self.k, scale=1.0 / self.rate, size=size)

    def scaled(self, factor: float) -> "Gamma":
        """Scaling a Gamma rescales its rate (family is closed)."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Gamma(k=self.k, rate=self.rate / factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gamma(k={self.k:.6g}, rate={self.rate:.6g})"
