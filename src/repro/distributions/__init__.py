"""Service-demand and interarrival-time distributions.

Every distribution exposes *exact* first and second moments (needed by
the Pollaczek–Khinchine and Cobham priority formulas, which depend on
``E[S^2]``), a squared coefficient of variation, sampling against a
:class:`numpy.random.Generator`, and cheap rescaling (``dist.scaled(c)``
multiplies the random variable by ``c`` — how a service *demand* in work
units becomes a service *time* when divided by a server speed).

The :mod:`repro.distributions.fitting` module builds a distribution from
a target ``(mean, scv)`` pair using the classic two-moment recipes
(deterministic / Erlang / exponential / balanced-means hyperexponential).
"""

from repro.distributions.base import Distribution, ScaledDistribution, ShiftedDistribution
from repro.distributions.deterministic import Deterministic
from repro.distributions.erlang import Erlang
from repro.distributions.exponential import Exponential
from repro.distributions.gamma_dist import Gamma
from repro.distributions.hyperexponential import HyperExponential
from repro.distributions.lognormal import LogNormal
from repro.distributions.mixture import Mixture
from repro.distributions.pareto import Pareto
from repro.distributions.uniform_dist import Uniform
from repro.distributions.weibull import Weibull
from repro.distributions.fitting import fit_two_moments

__all__ = [
    "Distribution",
    "ScaledDistribution",
    "ShiftedDistribution",
    "Deterministic",
    "Erlang",
    "Exponential",
    "Gamma",
    "HyperExponential",
    "LogNormal",
    "Mixture",
    "Pareto",
    "Uniform",
    "Weibull",
    "fit_two_moments",
]
