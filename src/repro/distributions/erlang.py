"""Erlang-k distribution (sum of k i.i.d. exponentials).

Covers the low-variability band ``scv = 1/k in (0, 1]`` in two-moment
fitting; service demands of pipelined requests are classically modeled
as Erlang.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["Erlang"]


class Erlang(Distribution):
    """Erlang distribution with shape ``k`` (positive integer) and rate ``rate``.

    The mean is ``k / rate`` and the SCV is ``1 / k``.
    """

    block_sampling_safe = True

    def __init__(self, k: int, rate: float):
        if not isinstance(k, (int, np.integer)) or k < 1:
            raise ModelValidationError(f"Erlang shape k must be a positive integer, got {k}")
        if rate <= 0.0 or not np.isfinite(rate):
            raise ModelValidationError(f"Erlang rate must be positive and finite, got {rate}")
        self.k = int(k)
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float, k: int) -> "Erlang":
        """Erlang-``k`` with the given mean (rate ``k / mean``)."""
        if mean <= 0.0:
            raise ModelValidationError(f"Erlang mean must be positive, got {mean}")
        return cls(k=k, rate=k / mean)

    @property
    def mean(self) -> float:
        return self.k / self.rate

    @property
    def second_moment(self) -> float:
        # E[X^2] = Var + mean^2 = k/rate^2 + (k/rate)^2 = k(k+1)/rate^2
        return self.k * (self.k + 1) / self.rate**2

    @property
    def third_moment(self) -> float:
        return self.k * (self.k + 1) * (self.k + 2) / self.rate**3

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.gamma(shape=self.k, scale=1.0 / self.rate, size=size)

    def scaled(self, factor: float) -> "Erlang":
        """Scaling an Erlang rescales its rate (family is closed)."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Erlang(k=self.k, rate=self.rate / factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Erlang(k={self.k}, rate={self.rate:.6g})"
