"""Pareto (Lomax-shifted) distribution — the heavy-tail stress test.

With shape ``alpha <= 2`` the second moment is infinite and every
mean-waiting-time formula that depends on ``E[S^2]`` diverges; the class
therefore requires ``alpha > 2`` and the property tests verify that the
simulator's sample moments converge to these analytic values.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["Pareto"]


class Pareto(Distribution):
    """Classic Pareto on ``[xm, inf)`` with shape ``alpha > 2``.

    ``P(X > x) = (xm / x)^alpha`` for ``x >= xm``. The ``alpha > 2``
    restriction guarantees a finite second moment, which the priority
    waiting-time formulas require.
    """

    block_sampling_safe = True

    def __init__(self, alpha: float, xm: float):
        if alpha <= 2.0 or not np.isfinite(alpha):
            raise ModelValidationError(
                f"Pareto shape must exceed 2 for a finite second moment, got {alpha}"
            )
        if xm <= 0.0 or not np.isfinite(xm):
            raise ModelValidationError(f"Pareto scale xm must be positive and finite, got {xm}")
        self.alpha = float(alpha)
        self.xm = float(xm)

    @classmethod
    def from_mean(cls, mean: float, alpha: float) -> "Pareto":
        """Pareto with given mean and shape (``xm = mean (alpha-1)/alpha``)."""
        if mean <= 0.0:
            raise ModelValidationError(f"mean must be positive, got {mean}")
        if alpha <= 2.0:
            raise ModelValidationError(f"Pareto shape must exceed 2, got {alpha}")
        return cls(alpha=alpha, xm=mean * (alpha - 1.0) / alpha)

    @property
    def mean(self) -> float:
        return self.alpha * self.xm / (self.alpha - 1.0)

    @property
    def second_moment(self) -> float:
        return self.alpha * self.xm**2 / (self.alpha - 2.0)

    @property
    def third_moment(self) -> float:
        if self.alpha <= 3.0:
            return float("inf")
        return self.alpha * self.xm**3 / (self.alpha - 3.0)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        # Inverse transform: X = xm * U^{-1/alpha}.
        u = rng.random(size=size)
        return self.xm * np.power(u, -1.0 / self.alpha)

    def scaled(self, factor: float) -> "Pareto":
        """Scaling rescales xm; the shape is scale-free (family closed)."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Pareto(alpha=self.alpha, xm=self.xm * factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pareto(alpha={self.alpha:.6g}, xm={self.xm:.6g})"
