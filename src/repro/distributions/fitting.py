"""Two-moment distribution fitting.

The experiment harness specifies service demands as ``(mean, scv)``
pairs; this module maps each pair to the textbook matching family:

* ``scv == 0``      → :class:`Deterministic`
* ``0 < scv < 1``   → :class:`Gamma` (exact continuous-shape match)
* ``scv == 1``      → :class:`Exponential`
* ``scv > 1``       → balanced-means :class:`HyperExponential` (H2)

All fits are exact in both moments, so analytic formulas that depend
only on ``(mean, E[S^2])`` are insensitive to the family choice — the
simulation experiments probe the residual higher-moment sensitivity.
"""

from __future__ import annotations

from repro.distributions.base import Distribution
from repro.distributions.deterministic import Deterministic
from repro.distributions.exponential import Exponential
from repro.distributions.gamma_dist import Gamma
from repro.distributions.hyperexponential import HyperExponential
from repro.exceptions import ModelValidationError

__all__ = ["fit_two_moments"]

_SCV_TOL = 1e-12


def fit_two_moments(mean: float, scv: float) -> Distribution:
    """Return a distribution with exactly the requested mean and SCV.

    Parameters
    ----------
    mean:
        Target first moment, must be positive.
    scv:
        Target squared coefficient of variation, must be non-negative.

    Returns
    -------
    Distribution
        Deterministic, Gamma, Exponential or balanced-means H2
        depending on the SCV band (see module docstring).

    Raises
    ------
    ModelValidationError
        If ``mean <= 0`` or ``scv < 0``.
    """
    if mean <= 0.0:
        raise ModelValidationError(f"mean must be positive, got {mean}")
    if scv < 0.0:
        raise ModelValidationError(f"scv must be non-negative, got {scv}")
    if scv <= _SCV_TOL:
        return Deterministic(mean)
    if abs(scv - 1.0) <= _SCV_TOL:
        return Exponential.from_mean(mean)
    if scv < 1.0:
        return Gamma.from_mean_scv(mean, scv)
    return HyperExponential.balanced_from_mean_scv(mean, scv)
