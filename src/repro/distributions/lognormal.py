"""Lognormal distribution, parameterized by its own mean and SCV.

A realistic model for multiplicative service demands; used in the
robustness experiments to stress the analytic M/G/1 formulas with a
skewed, non-phase-type distribution.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["LogNormal"]


class LogNormal(Distribution):
    """Lognormal with target ``mean > 0`` and ``scv > 0``.

    Internally stores the underlying normal parameters ``(mu, sigma)``
    solving ``E[X] = exp(mu + sigma^2/2)`` and
    ``scv = exp(sigma^2) - 1``.
    """

    block_sampling_safe = True

    def __init__(self, mean: float, scv: float):
        if mean <= 0.0 or not np.isfinite(mean):
            raise ModelValidationError(f"LogNormal mean must be positive and finite, got {mean}")
        if scv <= 0.0 or not np.isfinite(scv):
            raise ModelValidationError(f"LogNormal scv must be positive and finite, got {scv}")
        self._mean = float(mean)
        self._scv = float(scv)
        self.sigma2 = float(np.log1p(scv))
        self.sigma = float(np.sqrt(self.sigma2))
        self.mu = float(np.log(mean) - 0.5 * self.sigma2)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def second_moment(self) -> float:
        # E[X^2] = exp(2 mu + 2 sigma^2) = mean^2 * (1 + scv)
        return self._mean**2 * (1.0 + self._scv)

    @property
    def third_moment(self) -> float:
        # E[X^3] = exp(3 mu + 4.5 sigma^2) = mean^3 (1 + scv)^3.
        return self._mean**3 * (1.0 + self._scv) ** 3

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)

    def scaled(self, factor: float) -> "LogNormal":
        """Scaling shifts mu; the SCV is scale-free (family closed)."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return LogNormal(mean=self._mean * factor, scv=self._scv)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogNormal(mean={self._mean:.6g}, scv={self._scv:.6g})"
