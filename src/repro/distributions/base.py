"""Abstract base class and generic combinators for distributions.

The analytic queueing formulas in :mod:`repro.queueing` only ever need
the first two moments of a service-time distribution, but the simulator
needs to draw samples from exactly the same distribution — keeping both
behind one object guarantees the analytic model and the simulation are
parameterized identically (the whole point of the paper's validation
methodology).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = ["Distribution", "ScaledDistribution", "ShiftedDistribution"]


class Distribution(ABC):
    """A non-negative random variable with known first two moments.

    Subclasses implement :attr:`mean`, :attr:`second_moment` and
    :meth:`sample`; everything else (variance, SCV, scaling) derives
    from those.
    """

    #: Block-sampling determinism contract: True iff one
    #: ``sample(rng, size=n)`` call consumes the generator's bit stream
    #: in exactly the same order as ``n`` successive scalar
    #: ``sample(rng)`` calls, producing bit-identical values. The
    #: simulator only block-pregenerates variates for families that opt
    #: in (single-family NumPy draws and elementwise transforms of
    #: them); families with interleaved per-sample draws — e.g. a
    #: branch choice followed by the branch draw — must stay on the
    #: scalar path or seeded results would silently change.
    block_sampling_safe: bool = False

    @property
    @abstractmethod
    def mean(self) -> float:
        """First moment ``E[X]``."""

    @property
    @abstractmethod
    def second_moment(self) -> float:
        """Raw second moment ``E[X^2]`` (not the variance)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw samples.

        Parameters
        ----------
        rng:
            NumPy random generator; the caller controls seeding so that
        simulation replications are reproducible.
        size:
            ``None`` for a scalar draw, otherwise the number of i.i.d.
            samples to return as a 1-D :class:`numpy.ndarray`.
        """

    @property
    def third_moment(self) -> float:
        """Raw third moment ``E[X^3]``.

        Needed by the Takács formula for the *variance* of M/G/1
        waiting times, which feeds the percentile-delay machinery.
        Families whose third moment is infinite return ``inf``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement third_moment"
        )

    @property
    def variance(self) -> float:
        """``Var[X] = E[X^2] - E[X]^2`` (clamped at 0 against round-off)."""
        return max(self.second_moment - self.mean**2, 0.0)

    @property
    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def scv(self) -> float:
        """Squared coefficient of variation ``Var[X] / E[X]^2``.

        The key shape parameter in the Pollaczek–Khinchine formula:
        ``scv = 0`` for deterministic, ``1`` for exponential, ``> 1``
        for hyperexponential/heavy-tailed demands.
        """
        if self.mean == 0.0:
            return 0.0
        return self.variance / self.mean**2

    def scaled(self, factor: float) -> "Distribution":
        """Return the distribution of ``factor * X``.

        Used to convert a service *demand* (work, in cycles) into a
        service *time* at a server of speed ``s`` via
        ``demand.scaled(1.0 / s)``.
        """
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        if factor == 1.0:
            return self
        return ScaledDistribution(self, factor)

    def shifted(self, offset: float) -> "Distribution":
        """Return the distribution of ``X + offset`` (``offset >= 0``).

        Models a fixed per-request overhead (e.g. dispatch latency) on
        top of a random demand.
        """
        if offset < 0.0 or not np.isfinite(offset):
            raise ModelValidationError(f"shift offset must be non-negative and finite, got {offset}")
        if offset == 0.0:
            return self
        return ShiftedDistribution(self, offset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mean={self.mean:.6g}, scv={self.scv:.6g})"


class ScaledDistribution(Distribution):
    """Distribution of ``c * X`` for a base distribution ``X`` and ``c > 0``."""

    def __init__(self, base: Distribution, factor: float):
        if factor <= 0.0:
            raise ModelValidationError(f"scale factor must be positive, got {factor}")
        # Collapse nested scalings so repeated speed changes stay O(1).
        if isinstance(base, ScaledDistribution):
            factor *= base.factor
            base = base.base
        self.base = base
        self.factor = float(factor)

    @property
    def block_sampling_safe(self) -> bool:
        # Scaling is elementwise, so block safety is the base family's.
        return self.base.block_sampling_safe

    @property
    def mean(self) -> float:
        return self.factor * self.base.mean

    @property
    def second_moment(self) -> float:
        return self.factor**2 * self.base.second_moment

    @property
    def third_moment(self) -> float:
        return self.factor**3 * self.base.third_moment

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.factor * self.base.sample(rng, size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScaledDistribution({self.base!r}, factor={self.factor:.6g})"


class ShiftedDistribution(Distribution):
    """Distribution of ``X + d`` for a base distribution ``X`` and ``d >= 0``."""

    def __init__(self, base: Distribution, offset: float):
        if offset < 0.0:
            raise ModelValidationError(f"shift offset must be non-negative, got {offset}")
        self.base = base
        self.offset = float(offset)

    @property
    def block_sampling_safe(self) -> bool:
        # Shifting is elementwise, so block safety is the base family's.
        return self.base.block_sampling_safe

    @property
    def mean(self) -> float:
        return self.base.mean + self.offset

    @property
    def second_moment(self) -> float:
        # E[(X+d)^2] = E[X^2] + 2 d E[X] + d^2
        return self.base.second_moment + 2.0 * self.offset * self.base.mean + self.offset**2

    @property
    def third_moment(self) -> float:
        # Binomial expansion of E[(X+d)^3].
        d = self.offset
        return (
            self.base.third_moment
            + 3.0 * d * self.base.second_moment
            + 3.0 * d**2 * self.base.mean
            + d**3
        )

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.base.sample(rng, size) + self.offset
