"""Uniform distribution on ``[low, high]``."""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["Uniform"]


class Uniform(Distribution):
    """Uniform on ``[low, high]`` with ``0 <= low < high``."""

    block_sampling_safe = True

    def __init__(self, low: float, high: float):
        if not (np.isfinite(low) and np.isfinite(high)):
            raise ModelValidationError(f"Uniform bounds must be finite, got [{low}, {high}]")
        if low < 0.0:
            raise ModelValidationError(f"Uniform lower bound must be non-negative, got {low}")
        if high <= low:
            raise ModelValidationError(f"Uniform upper bound must exceed lower, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def second_moment(self) -> float:
        # E[X^2] = (a^2 + ab + b^2) / 3
        a, b = self.low, self.high
        return (a * a + a * b + b * b) / 3.0

    @property
    def third_moment(self) -> float:
        # E[X^3] = (b^4 - a^4) / (4 (b - a)).
        a, b = self.low, self.high
        return (b**4 - a**4) / (4.0 * (b - a))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.uniform(self.low, self.high, size=size)

    def scaled(self, factor: float) -> "Uniform":
        """Scaling rescales both endpoints (family is closed)."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Uniform(self.low * factor, self.high * factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Uniform(low={self.low:.6g}, high={self.high:.6g})"
