"""Finite mixture of arbitrary component distributions.

Generalizes :class:`repro.distributions.HyperExponential` to mix any
components — used by the workload generator to build multi-modal demand
profiles (e.g. "cheap read, expensive transaction") for a single class.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError

__all__ = ["Mixture"]


class Mixture(Distribution):
    """With probability ``probs[i]`` the sample comes from ``components[i]``.

    Moments mix linearly: ``E[X^n] = sum_i p_i E[X_i^n]``.
    """

    def __init__(self, probs: Sequence[float], components: Sequence[Distribution]):
        probs_arr = np.asarray(probs, dtype=float)
        if probs_arr.ndim != 1 or probs_arr.size == 0 or probs_arr.size != len(components):
            raise ModelValidationError("probs and components must be equal-length non-empty sequences")
        if np.any(probs_arr <= 0.0):
            raise ModelValidationError(f"mixture probabilities must be positive, got {probs_arr}")
        if abs(probs_arr.sum() - 1.0) > 1e-9:
            raise ModelValidationError(f"mixture probabilities must sum to 1, got {probs_arr.sum()}")
        if not all(isinstance(c, Distribution) for c in components):
            raise ModelValidationError("all mixture components must be Distribution instances")
        self.probs = probs_arr / probs_arr.sum()
        self.components = list(components)
        # Branch CDF for the scalar fast path; bit-identical to
        # Generator.choice(n, p=p), which inverts the same normalized
        # cumsum against one uniform double.
        cdf = self.probs.cumsum()
        cdf /= cdf[-1]
        self._cdf = cdf

    @property
    def mean(self) -> float:
        return float(np.dot(self.probs, [c.mean for c in self.components]))

    @property
    def second_moment(self) -> float:
        return float(np.dot(self.probs, [c.second_moment for c in self.components]))

    @property
    def third_moment(self) -> float:
        return float(np.dot(self.probs, [c.third_moment for c in self.components]))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            # CDF inversion against one uniform double: bit-identical
            # to choice(p=probs) without its per-call setup.
            idx = int(self._cdf.searchsorted(rng.random(), side="right"))
            return self.components[idx].sample(rng)
        idx = rng.choice(len(self.components), p=self.probs, size=size)
        out = np.empty(size, dtype=float)
        for i, comp in enumerate(self.components):
            mask = idx == i
            n = int(mask.sum())
            if n:
                out[mask] = comp.sample(rng, n)
        return out

    def scaled(self, factor: float) -> "Mixture":
        """Scaling distributes over the components (family closed)."""
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Mixture(
            probs=self.probs.tolist(),
            components=[c.scaled(factor) for c in self.components],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mixture(probs={self.probs.tolist()}, components={self.components!r})"
