"""Online dynamic speed control (the drift-plus-penalty subsystem).

The paper's P2 optimizers are *offline*: they need the arrival-rate
vector. This package provides the *online* counterpart — epoch
policies observing only queue lengths — plus the trace-driven harness
that runs any policy through the event core and scores it on energy
and SLA compliance. Experiment A7 compares the
:class:`DriftPlusPenaltyController` against the oracle and
forecast-driven plans built from :func:`repro.core.plan_speed_schedule`.
"""

from repro.control.harness import ControlRunResult, run_controlled
from repro.control.policies import (
    DriftPlusPenaltyController,
    EpochPolicy,
    PlannedSpeedPolicy,
    StaticSpeedPolicy,
)

__all__ = [
    "ControlRunResult",
    "DriftPlusPenaltyController",
    "EpochPolicy",
    "PlannedSpeedPolicy",
    "StaticSpeedPolicy",
    "run_controlled",
]
