"""Epoch speed policies: the decision rules the control harness runs.

Every policy implements the same tiny protocol — ``decide(t,
queue_counts, speeds)`` called at each epoch boundary with the
``(num_tiers, num_classes)`` matrix of jobs in system and the current
per-tier speeds, returning the next speed vector (or ``None`` to hold)
— so planned schedules, static baselines and the online
drift-plus-penalty controller are interchangeable inside one
trace-driven simulation.

The drift-plus-penalty controller is the tentpole: a queue-reactive
rule needing **no arrival-rate knowledge at all**. Each tier's speed
minimizes the Lyapunov drift-plus-penalty bound

    V * kappa_i * s^alpha  -  Q_i * s

over the DVFS box, where ``Q_i`` is the tier's work backlog (queue
counts weighted by mean service demands at speed 1) and ``V >= 0``
prices energy against backlog. The objective is separable per tier
and convex in ``s`` for ``alpha > 1``, so the minimizer is the
stationary point ``(Q_i / (V kappa_i alpha))^(1/(alpha-1))`` clipped
to the box. Sweeping ``V`` traces the power/delay frontier: ``V -> 0``
recovers max-speed (pure delay), large ``V`` rides the minimum speed
(pure energy). This is the classic Lyapunov-optimization speed-scaling
rule specialized to the paper's ``kappa s^alpha`` power curves.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from collections.abc import Sequence

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.controller import EpochPlan
from repro.exceptions import ModelValidationError

__all__ = [
    "EpochPolicy",
    "StaticSpeedPolicy",
    "PlannedSpeedPolicy",
    "DriftPlusPenaltyController",
]


class EpochPolicy(ABC):
    """Decision rule invoked at every epoch boundary."""

    #: Display name used in experiment tables.
    name: str = "policy"

    @abstractmethod
    def decide(
        self, t: float, queue_counts: np.ndarray, speeds: np.ndarray
    ) -> np.ndarray | None:
        """Next per-tier speed vector, or ``None`` to keep ``speeds``."""

    def fresh(self) -> "EpochPolicy":
        """A pristine instance for an independent run (stateless
        policies may return themselves)."""
        return self


class StaticSpeedPolicy(EpochPolicy):
    """Holds one fixed speed vector (max-speed and provisioned-static
    baselines)."""

    def __init__(self, speeds: Sequence[float], name: str = "static"):
        arr = np.asarray(speeds, dtype=float)
        if arr.ndim != 1 or arr.size == 0 or np.any(arr <= 0.0):
            raise ModelValidationError("speeds must be a non-empty vector of positives")
        self.speeds = arr
        self.name = name

    def decide(self, t, queue_counts, speeds):
        return self.speeds


class PlannedSpeedPolicy(EpochPolicy):
    """Replays a pre-solved schedule (the oracle / forecast plans).

    The plan is a list of :class:`~repro.core.controller.EpochPlan`
    rows (from :func:`~repro.core.controller.plan_speed_schedule`);
    at decision time the policy looks up the epoch containing ``t``
    and returns its speeds. Decision instants need not coincide with
    plan boundaries — the last plan epoch at or before ``t`` wins.
    """

    def __init__(self, plans: Sequence[EpochPlan], name: str = "planned"):
        if len(plans) == 0:
            raise ModelValidationError("empty plan")
        starts = [p.start for p in plans]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ModelValidationError("plan epochs must have increasing starts")
        self._starts = starts
        self._speeds = [np.asarray(p.speeds, dtype=float) for p in plans]
        self.name = name

    def decide(self, t, queue_counts, speeds):
        idx = bisect_right(self._starts, t) - 1
        if idx < 0:
            idx = 0
        return self._speeds[idx]


class DriftPlusPenaltyController(EpochPolicy):
    """Online queue-reactive speed scaling (drift-plus-penalty).

    Parameters
    ----------
    cluster:
        Supplies the per-tier power curves (``kappa``, ``alpha``), the
        DVFS boxes and the mean service demands at speed 1 used to
        convert queue counts into work backlogs. Only *means* are
        consulted — no arrival rates, no distributions.
    v_param:
        The Lyapunov trade-off knob ``V >= 0``. Small V chases the
        backlog (speeds pinned high); large V chases energy (speeds
        pinned low). Sweeping it traces the power/delay frontier.
    class_weights:
        Optional per-class backlog weights (defaults to 1). Raising a
        class's weight makes its queued work push speeds harder —
        the knob for priority-aware control.
    """

    def __init__(
        self,
        cluster: ClusterModel,
        v_param: float,
        class_weights: Sequence[float] | None = None,
    ):
        if v_param < 0.0 or not np.isfinite(v_param):
            raise ModelValidationError(f"v_param must be finite and >= 0, got {v_param}")
        k_classes = cluster.num_classes
        if class_weights is None:
            weights = np.ones(k_classes)
        else:
            weights = np.asarray(class_weights, dtype=float)
            if weights.shape != (k_classes,) or np.any(weights <= 0.0):
                raise ModelValidationError(
                    f"class_weights must be {k_classes} positive values"
                )
        self._cluster = cluster
        self._weights = weights
        self.v_param = float(v_param)
        self.name = f"dpp(V={v_param:g})"
        # Mean demand at speed 1 per (tier, class): the queue-count ->
        # work-backlog conversion matrix.
        self._demand_means = np.array(
            [[d.mean for d in tier.demands] for tier in cluster.tiers]
        )
        self._kappa = np.array([t.spec.power.kappa for t in cluster.tiers])
        self._alpha = np.array([t.spec.power.alpha for t in cluster.tiers])
        if np.any(self._alpha <= 1.0):
            raise ModelValidationError(
                "drift-plus-penalty needs power exponents alpha > 1 "
                "(the per-tier objective must be convex in the speed)"
            )
        self._lo = np.array([t.spec.min_speed for t in cluster.tiers])
        self._hi = np.array([t.spec.max_speed for t in cluster.tiers])

    def decide(self, t, queue_counts, speeds):
        # Work backlog per tier: queued jobs weighted by class weight
        # and mean demand (seconds of work at speed 1).
        q = (queue_counts * self._weights[None, :] * self._demand_means).sum(axis=1)
        return self.speeds_for_backlog(q)

    def speeds_for_backlog(self, backlog: np.ndarray) -> np.ndarray:
        """The drift-plus-penalty minimizer for a work-backlog vector
        (exposed separately for tests and the perf benchmark)."""
        if self.v_param == 0.0:
            # Pure drift minimization: any backlog pins the tier at max
            # speed; an empty tier idles at the floor.
            return np.where(backlog > 0.0, self._hi, self._lo)
        with np.errstate(divide="ignore"):
            s_star = (backlog / (self.v_param * self._kappa * self._alpha)) ** (
                1.0 / (self._alpha - 1.0)
            )
        return np.clip(s_star, self._lo, self._hi)

    def fresh(self) -> "DriftPlusPenaltyController":
        return DriftPlusPenaltyController(self._cluster, self.v_param, self._weights)
