"""Trace-driven control-loop simulation.

:func:`run_controlled` replays an :class:`~repro.workload.traces.ArrivalTrace`
through the event core with an :class:`~repro.control.policies.EpochPolicy`
attached at a fixed decision period, and distills the run into the
figures every policy comparison needs: energy over the horizon, mean
end-to-end delay against the SLA bound, and the per-epoch
speed/queue/energy trace. All policies in an experiment replay the
*same* trace (common random numbers by construction), so energy gaps
between them are pure policy effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.cluster.model import ClusterModel
from repro.control.policies import EpochPolicy
from repro.exceptions import ModelValidationError
from repro.simulation.simulator import SimulationResult, simulate
from repro.workload.generator import workload_from_rates
from repro.workload.traces import ArrivalTrace, TraceArrivalProcess

__all__ = ["ControlRunResult", "run_controlled"]


@dataclass
class ControlRunResult:
    """One policy's scorecard on one trace."""

    policy_name: str
    total_energy: float
    average_power: float
    mean_delay: float
    delays: np.ndarray
    sla_met: bool
    max_mean_delay: float
    result: SimulationResult = field(repr=False)

    @property
    def epoch_trace(self) -> list[dict[str, Any]]:
        """Per-boundary records: time, queue matrix, applied speeds,
        cumulative dynamic energy."""
        return self.result.meta["epoch_trace"]

    @property
    def mean_speeds(self) -> np.ndarray:
        """Time-average per-tier speeds over the decision epochs."""
        trace = self.epoch_trace
        return np.mean([rec["speeds"] for rec in trace], axis=0)


def run_controlled(
    cluster: ClusterModel,
    trace: ArrivalTrace,
    policy: EpochPolicy,
    epoch_length: float,
    max_mean_delay: float,
    seed: int = 0,
    warmup_fraction: float = 0.0,
    start_speeds: np.ndarray | None = None,
    progress: Callable[[int, int, float], None] | None = None,
) -> ControlRunResult:
    """Replay ``trace`` under ``policy`` deciding every ``epoch_length``.

    ``progress``, when given, is invoked after every controller
    decision with ``(epoch_index, n_epochs_total, t)`` — the live-
    progress seam for long closed-loop runs (the telemetry layer
    additionally emits one ``sim.epoch`` event per boundary, so
    ``repro status`` sees controller runs without this callback).

    The cluster starts at ``start_speeds`` (default: every tier at max
    speed, the safe cold-start) and the policy takes over from the
    first boundary at ``t = 0``. The stationary stability pre-check is
    skipped (``allow_unstable=True``): a time-varying trace can be
    transiently overloaded by design — surviving that is precisely
    what the comparison measures. SLA compliance is judged on the
    completion-weighted mean end-to-end delay against
    ``max_mean_delay``, the same aggregate bound the planners solve
    against.
    """
    if epoch_length <= 0.0 or epoch_length >= trace.horizon:
        raise ModelValidationError(
            f"epoch_length must be in (0, horizon={trace.horizon}), got {epoch_length}"
        )
    if max_mean_delay <= 0.0:
        raise ModelValidationError(f"max_mean_delay must be positive, got {max_mean_delay}")
    if cluster.num_classes != trace.num_classes:
        raise ModelValidationError(
            f"cluster has {cluster.num_classes} classes but trace has {trace.num_classes}"
        )
    if start_speeds is None:
        start_speeds = np.array([t.spec.max_speed for t in cluster.tiers])
    sim_cluster = cluster.with_speeds(start_speeds)

    # The Workload object carries names/rates for reporting; arrivals
    # come from the trace replay (zero-arrival classes keep a vanishing
    # nominal rate to satisfy validation).
    rates = np.maximum(trace.rates(), 1e-9)
    workload = workload_from_rates(rates, names=trace.class_names)
    processes = TraceArrivalProcess.from_trace(trace)

    live = policy.fresh()
    epoch_times = np.arange(0.0, trace.horizon, epoch_length)

    controller = live.decide
    if progress is not None:
        n_epochs_total = len(epoch_times)
        epoch_counter = iter(range(n_epochs_total))

        def controller(tb, counts, speeds, _decide=live.decide):
            new_speeds = _decide(tb, counts, speeds)
            progress(next(epoch_counter, -1), n_epochs_total, float(tb))
            return new_speeds

    with obs.span(
        "control.run",
        policy=live.name,
        n_epochs=len(epoch_times),
        horizon=trace.horizon,
    ):
        result = simulate(
            sim_cluster,
            workload,
            horizon=trace.horizon,
            warmup_fraction=warmup_fraction,
            seed=seed,
            arrival_processes=processes,
            allow_unstable=True,
            epoch_times=epoch_times,
            epoch_controller=controller,
        )

    window = result.horizon - result.warmup
    mean_delay = float(result.mean_delay)
    obs.event(
        "control.run.done",
        policy=live.name,
        mean_delay=mean_delay,
        average_power=float(result.average_power),
        sla_met=bool(np.isfinite(mean_delay) and mean_delay <= max_mean_delay),
        n_epochs=len(result.meta.get("epoch_trace", [])),
    )
    return ControlRunResult(
        policy_name=live.name,
        total_energy=float(result.average_power * window),
        average_power=float(result.average_power),
        mean_delay=mean_delay,
        delays=result.delays,
        sla_met=bool(np.isfinite(mean_delay) and mean_delay <= max_mean_delay),
        max_mean_delay=float(max_mean_delay),
        result=result,
    )
