"""repro — reproduction of *Power and Performance Management in
Priority-Type Cluster Computing Systems* (Kaiqi Xiong, IPDPS 2011).

The package models a multi-tier cluster serving multiple priority
classes of customers, provides analytic formulas for per-class average
end-to-end delay and energy consumption, constrained optimizers for the
paper's three resource-management problems, and a from-scratch
discrete-event simulator used to validate every analytic quantity.

Top-level convenience re-exports cover the public API most users need;
the subpackages hold the full surface:

``repro.distributions``
    Service-demand / interarrival distributions with exact moments.
``repro.queueing``
    Analytical queueing formulas (M/M/1, M/M/c, M/G/1, priority queues,
    tandem networks).
``repro.cluster``
    Cluster model: tiers, server specs, DVFS power model, cost model.
``repro.workload``
    Customer classes and arrival processes.
``repro.simulation``
    Discrete-event simulator with energy metering.
``repro.core``
    The paper's contribution: delay/energy models and optimization
    problems P1 (min delay s.t. energy), P2 (min energy s.t. delay)
    and P3 (min cost s.t. per-class SLAs).
``repro.baselines``
    Baseline allocation policies and an exhaustive-search certifier.
``repro.experiments``
    Drivers regenerating every table/figure in EXPERIMENTS.md.
"""

from repro._version import __version__
from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core import (
    SLA,
    ClassSLA,
    ClusterPerformanceModel,
    DelayEnergyReport,
    minimize_cost,
    minimize_delay,
    minimize_energy,
)
from repro.workload import CustomerClass, Workload

__all__ = [
    "__version__",
    "ClusterModel",
    "PowerModel",
    "ServerSpec",
    "Tier",
    "CustomerClass",
    "Workload",
    "ClusterPerformanceModel",
    "DelayEnergyReport",
    "SLA",
    "ClassSLA",
    "minimize_delay",
    "minimize_energy",
    "minimize_cost",
]
