"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the package throws with a single ``except`` clause while
still being able to discriminate the common failure modes: an unstable
queueing system (:class:`UnstableSystemError`), an infeasible
optimization problem (:class:`InfeasibleProblemError`) and malformed
model inputs (:class:`ModelValidationError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ModelValidationError(ReproError, ValueError):
    """An input model (cluster, workload, distribution) is malformed.

    Raised eagerly at construction time wherever possible so invalid
    configurations fail loudly instead of producing nonsense metrics.
    """


class UnstableSystemError(ReproError, ValueError):
    """A queueing system was evaluated outside its stability region.

    Analytical formulas for mean waiting time diverge as utilization
    approaches one; evaluating them at ``rho >= 1`` would silently
    return negative or infinite garbage, so the library raises instead.

    Attributes
    ----------
    utilization:
        The offending utilization value, when known.
    """

    def __init__(self, message: str, utilization: float | None = None):
        super().__init__(message)
        self.utilization = utilization


class InfeasibleProblemError(ReproError, ValueError):
    """A constrained optimization problem has an empty feasible set.

    For example: a delay bound tighter than the zero-queueing service
    time achievable at maximum speed, or an energy budget below idle
    power. The message explains which constraint cannot be met.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge to a feasible point."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class ReproWarning(UserWarning):
    """Base class for all warnings issued by the :mod:`repro` package."""


class CompiledFallbackWarning(ReproWarning):
    """The compiled simulation backend was requested but not used.

    Issued (once per process and reason) when ``REPRO_SIM_BACKEND`` is
    set to ``compiled`` but the C kernel cannot be built/loaded or the
    run's configuration is outside the kernel's supported envelope
    (PS tiers, dynamic speed control, antithetic streams, telemetry
    queue sampling). The run transparently degrades to the pure-Python
    engine, which produces bit-identical results.
    """


class WarmupDiscardWarning(ReproWarning):
    """A simulation's warmup window discarded most of its data.

    Issued when more than half of the jobs that completed during a
    replication arrived before the warmup cutoff and were therefore
    excluded from the statistics: the surviving tail is small and the
    reported delays are correspondingly noisy. Lengthen the horizon or
    shrink ``warmup_fraction``.
    """
