"""Arrival processes for the simulator.

The analytic model assumes Poisson arrivals; the simulator additionally
supports a two-state Markov-modulated Poisson process (MMPP-2, bursty)
and batch Poisson arrivals so the robustness experiments can measure
how far the analytic formulas drift when the Poisson assumption is
violated.

Each process generates *interarrival times*; the simulator advances a
clock by successive draws. Processes are stateful per simulation run,
so :meth:`ArrivalProcess.fresh` hands each run its own instance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "MMPP2",
    "BatchPoissonProcess",
    "NonHomogeneousPoisson",
    "RenewalProcess",
]


class ArrivalProcess(ABC):
    """Generator of successive interarrival gaps (and batch sizes)."""

    @property
    @abstractmethod
    def rate(self) -> float:
        """Long-run average arrival rate (jobs per unit time)."""

    @abstractmethod
    def next_arrival(self, rng: np.random.Generator) -> tuple[float, int]:
        """Return ``(gap, batch_size)``: time until the next arrival
        epoch and how many jobs arrive at it."""

    @abstractmethod
    def fresh(self) -> "ArrivalProcess":
        """A new instance with pristine state for an independent run."""


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson process at ``rate``."""

    def __init__(self, rate: float):
        if rate <= 0.0 or not np.isfinite(rate):
            raise ModelValidationError(f"Poisson rate must be positive and finite, got {rate}")
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        return self._rate

    def next_arrival(self, rng: np.random.Generator) -> tuple[float, int]:
        return rng.exponential(1.0 / self._rate), 1

    def fresh(self) -> "PoissonProcess":
        return PoissonProcess(self._rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PoissonProcess(rate={self._rate:.6g})"


class MMPP2(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The modulating chain alternates between states 0 and 1 with
    exponential sojourns (rates ``r01`` out of 0, ``r10`` out of 1);
    arrivals are Poisson at ``rate0`` / ``rate1`` in the respective
    state. The long-run rate is the stationary mixture
    ``(r10·rate0 + r01·rate1) / (r01 + r10)``.
    """

    def __init__(self, rate0: float, rate1: float, r01: float, r10: float):
        for name, v in [("rate0", rate0), ("rate1", rate1), ("r01", r01), ("r10", r10)]:
            if v <= 0.0 or not np.isfinite(v):
                raise ModelValidationError(f"MMPP2 {name} must be positive and finite, got {v}")
        self.rate0, self.rate1 = float(rate0), float(rate1)
        self.r01, self.r10 = float(r01), float(r10)
        self._state = 0
        self._state_time_left: float | None = None

    @property
    def rate(self) -> float:
        return (self.r10 * self.rate0 + self.r01 * self.rate1) / (self.r01 + self.r10)

    def next_arrival(self, rng: np.random.Generator) -> tuple[float, int]:
        gap = 0.0
        while True:
            lam = self.rate0 if self._state == 0 else self.rate1
            switch_rate = self.r01 if self._state == 0 else self.r10
            if self._state_time_left is None:
                self._state_time_left = rng.exponential(1.0 / switch_rate)
            candidate = rng.exponential(1.0 / lam)
            if candidate <= self._state_time_left:
                # Arrival happens before the modulating chain switches.
                self._state_time_left -= candidate
                return gap + candidate, 1
            # Chain switches first; carry the elapsed time and re-draw
            # (memorylessness of the exponential justifies the re-draw).
            gap += self._state_time_left
            self._state = 1 - self._state
            self._state_time_left = None

    def fresh(self) -> "MMPP2":
        return MMPP2(self.rate0, self.rate1, self.r01, self.r10)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MMPP2(rate0={self.rate0:.6g}, rate1={self.rate1:.6g}, "
            f"r01={self.r01:.6g}, r10={self.r10:.6g})"
        )


class NonHomogeneousPoisson(ArrivalProcess):
    """Time-varying Poisson process via Lewis–Shedler thinning.

    ``rate_fn(t)`` gives the instantaneous rate at absolute time ``t``;
    ``rate_max`` must dominate it everywhere (candidate arrivals are
    drawn at ``rate_max`` and accepted with probability
    ``rate_fn(t) / rate_max``). Models diurnal load curves for the
    dynamic power-management experiments.

    Parameters
    ----------
    rate_fn:
        Callable ``t -> λ(t) >= 0``.
    rate_max:
        A finite upper bound on ``rate_fn`` over the simulated horizon.
    mean_rate:
        Reported long-run rate (for :attr:`rate`); defaults to
        ``rate_max`` when unknown.
    """

    def __init__(self, rate_fn, rate_max: float, mean_rate: float | None = None):
        if not callable(rate_fn):
            raise ModelValidationError("rate_fn must be callable")
        if rate_max <= 0.0 or not np.isfinite(rate_max):
            raise ModelValidationError(f"rate_max must be positive and finite, got {rate_max}")
        self.rate_fn = rate_fn
        self.rate_max = float(rate_max)
        self._mean_rate = float(mean_rate) if mean_rate is not None else self.rate_max
        self._clock = 0.0

    @property
    def rate(self) -> float:
        return self._mean_rate

    def next_arrival(self, rng: np.random.Generator) -> tuple[float, int]:
        start = self._clock
        t = start
        while True:
            t += rng.exponential(1.0 / self.rate_max)
            lam = float(self.rate_fn(t))
            if lam < 0.0 or lam > self.rate_max * (1.0 + 1e-9):
                raise ModelValidationError(
                    f"rate_fn({t:.6g}) = {lam:.6g} outside [0, rate_max={self.rate_max:.6g}]"
                )
            if rng.random() * self.rate_max <= lam:
                self._clock = t
                return t - start, 1

    def fresh(self) -> "NonHomogeneousPoisson":
        return NonHomogeneousPoisson(self.rate_fn, self.rate_max, self._mean_rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NonHomogeneousPoisson(rate_max={self.rate_max:.6g})"


class BatchPoissonProcess(ArrivalProcess):
    """Poisson arrival *epochs* carrying geometric batch sizes.

    Epochs occur at rate ``epoch_rate``; each epoch delivers
    ``Geometric(p)`` jobs (support 1, 2, ...; mean ``1/p``), so the job
    rate is ``epoch_rate / p``.
    """

    def __init__(self, epoch_rate: float, p: float):
        if epoch_rate <= 0.0 or not np.isfinite(epoch_rate):
            raise ModelValidationError(f"epoch rate must be positive and finite, got {epoch_rate}")
        if not 0.0 < p <= 1.0:
            raise ModelValidationError(f"geometric parameter must be in (0, 1], got {p}")
        self.epoch_rate = float(epoch_rate)
        self.p = float(p)

    @property
    def rate(self) -> float:
        return self.epoch_rate / self.p

    def next_arrival(self, rng: np.random.Generator) -> tuple[float, int]:
        return rng.exponential(1.0 / self.epoch_rate), int(rng.geometric(self.p))

    def fresh(self) -> "BatchPoissonProcess":
        return BatchPoissonProcess(self.epoch_rate, self.p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchPoissonProcess(epoch_rate={self.epoch_rate:.6g}, p={self.p:.6g})"


class RenewalProcess(ArrivalProcess):
    """Renewal arrivals: i.i.d. interarrival times from any
    :class:`repro.distributions.Distribution`.

    Generalizes Poisson (exponential gaps) to arbitrary gap shapes —
    Erlang gaps are *smoother* than Poisson (SCV < 1), hyperexponential
    gaps *burstier* (SCV > 1) — the G in G/M/1 and the natural partner
    of the :class:`repro.queueing.GM1` analysis.
    """

    def __init__(self, interarrival):
        from repro.distributions.base import Distribution

        if not isinstance(interarrival, Distribution):
            raise ModelValidationError(
                f"interarrival must be a Distribution, got {type(interarrival).__name__}"
            )
        if interarrival.mean <= 0.0:
            raise ModelValidationError("interarrival mean must be positive")
        self.interarrival = interarrival

    @property
    def rate(self) -> float:
        return 1.0 / self.interarrival.mean

    def next_arrival(self, rng: np.random.Generator) -> tuple[float, int]:
        return float(self.interarrival.sample(rng)), 1

    def fresh(self) -> "RenewalProcess":
        return RenewalProcess(self.interarrival)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RenewalProcess({self.interarrival!r})"
