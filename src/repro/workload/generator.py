"""Convenience constructors for multi-class workloads."""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ModelValidationError
from repro.workload.classes import CustomerClass, Workload

__all__ = ["workload_from_rates", "scaled_workload"]

_DEFAULT_NAMES = ("gold", "silver", "bronze", "tin", "lead", "zinc", "iron", "clay")


def workload_from_rates(
    rates: Sequence[float],
    names: Sequence[str] | None = None,
    weights: Sequence[float] | None = None,
) -> Workload:
    """Workload with the given per-class arrival rates (priority order).

    Names default to the metal scale ("gold", "silver", ...), weights
    to 1.
    """
    n = len(rates)
    if n == 0:
        raise ModelValidationError("need at least one class rate")
    if names is None:
        if n <= len(_DEFAULT_NAMES):
            names = _DEFAULT_NAMES[:n]
        else:
            names = [f"class{i + 1}" for i in range(n)]
    if len(names) != n:
        raise ModelValidationError(f"got {n} rates but {len(names)} names")
    if weights is None:
        weights = [1.0] * n
    if len(weights) != n:
        raise ModelValidationError(f"got {n} rates but {len(weights)} weights")
    return Workload(
        [CustomerClass(nm, float(r), float(w)) for nm, r, w in zip(names, rates, weights)]
    )


def scaled_workload(base: Workload, total_rate: float) -> Workload:
    """Rescale a workload's class mix to a target aggregate rate,
    preserving the per-class proportions."""
    if total_rate <= 0.0:
        raise ModelValidationError(f"target total rate must be positive, got {total_rate}")
    return base.scaled(total_rate / base.total_rate)
