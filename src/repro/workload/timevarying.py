"""Time-varying workload profiles for the online-control experiments.

The paper's optimizers see one stationary rate vector; an online
controller earns its keep when the rates move. This module builds the
three canonical non-stationary shapes as rate profiles and turns them
into :class:`~repro.workload.traces.ArrivalTrace` instances the
trace-driven control harness replays:

* **diurnal** — a sinusoidal day (trough at dawn, peak in the
  afternoon), the planner-friendly case: tomorrow looks like today.
* **flash crowd** — a diurnal baseline with a rectangular surge
  multiplying every class's rate for a short window; invisible to any
  forecast trained on surge-free history.
* **bursty** — a two-state MMPP whose long-run rates match the
  nominal vector but whose arrivals clump; stresses queue-reactive
  control without moving the mean.

Profiles are plain ``t -> factor`` callables applied to a base rate
vector, so the same shape drives both trace synthesis (via
Lewis–Shedler thinning) and oracle/forecast rate grids (via
:func:`profile_rates`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import ModelValidationError
from repro.workload.arrivals import MMPP2, NonHomogeneousPoisson
from repro.workload.traces import ArrivalTrace, generate_trace

__all__ = [
    "diurnal_profile",
    "flash_crowd_profile",
    "profile_rates",
    "profile_processes",
    "diurnal_trace",
    "flash_crowd_trace",
    "bursty_trace",
]


def diurnal_profile(
    period: float = 24.0,
    trough: float = 0.25,
    peak: float = 1.6,
    peak_time: float | None = None,
) -> Callable[[float], float]:
    """Sinusoidal load factor cycling between ``trough`` and ``peak``.

    The factor multiplies a base rate vector; the maximum lands at
    ``peak_time`` (defaults to 2/3 through the period, the canonical
    afternoon peak of F8's day).
    """
    if period <= 0.0 or not np.isfinite(period):
        raise ModelValidationError(f"period must be positive and finite, got {period}")
    if not 0.0 < trough <= peak:
        raise ModelValidationError(
            f"need 0 < trough <= peak, got trough={trough}, peak={peak}"
        )
    t_peak = 2.0 * period / 3.0 if peak_time is None else float(peak_time)
    mid = (peak + trough) / 2.0
    amp = (peak - trough) / 2.0
    two_pi = 2.0 * np.pi

    def factor(t: float) -> float:
        return mid + amp * np.cos(two_pi * (t - t_peak) / period)

    return factor


def flash_crowd_profile(
    base_profile: Callable[[float], float],
    surge_start: float,
    surge_duration: float,
    surge_factor: float,
) -> Callable[[float], float]:
    """Multiply ``base_profile`` by ``surge_factor`` inside the surge
    window ``[surge_start, surge_start + surge_duration)``."""
    if surge_duration <= 0.0:
        raise ModelValidationError(f"surge duration must be positive, got {surge_duration}")
    if surge_factor < 1.0:
        raise ModelValidationError(f"surge factor must be >= 1, got {surge_factor}")
    surge_end = surge_start + surge_duration

    def factor(t: float) -> float:
        f = base_profile(t)
        if surge_start <= t < surge_end:
            f *= surge_factor
        return f

    return factor


def profile_rates(
    profile: Callable[[float], float],
    base_rates: Sequence[float],
    epoch_starts: Sequence[float],
) -> np.ndarray:
    """Evaluate a profile on an epoch grid: the exact rate matrix a
    planning oracle sees. Shape ``(num_epochs, num_classes)``."""
    base = np.asarray(base_rates, dtype=float)
    if base.ndim != 1 or base.size == 0 or np.any(base < 0.0):
        raise ModelValidationError("base_rates must be a non-empty vector of rates >= 0")
    factors = np.array([float(profile(t)) for t in np.asarray(epoch_starts, dtype=float)])
    if np.any(factors < 0.0):
        raise ModelValidationError("profile produced a negative factor")
    return factors[:, None] * base[None, :]


def profile_processes(
    profile: Callable[[float], float],
    base_rates: Sequence[float],
    horizon: float,
    factor_max: float | None = None,
) -> list[NonHomogeneousPoisson]:
    """One thinned NHPP per class following ``profile * base_rate``.

    ``factor_max`` must dominate the profile over ``[0, horizon]``;
    when omitted it is bounded empirically on a dense grid (with a
    safety margin) — fine for the smooth profiles built here.
    """
    base = np.asarray(base_rates, dtype=float)
    if base.ndim != 1 or base.size == 0 or np.any(base <= 0.0):
        raise ModelValidationError("base_rates must be a non-empty vector of rates > 0")
    if horizon <= 0.0 or not np.isfinite(horizon):
        raise ModelValidationError(f"horizon must be positive and finite, got {horizon}")
    if factor_max is None:
        grid = np.linspace(0.0, horizon, 4097)
        factor_max = max(float(profile(t)) for t in grid) * 1.05
    if factor_max <= 0.0:
        raise ModelValidationError(f"factor_max must be positive, got {factor_max}")

    procs = []
    for r in base:
        def rate_fn(t: float, _r=float(r)) -> float:
            return min(_r * float(profile(t)), _r * factor_max)

        procs.append(
            NonHomogeneousPoisson(rate_fn, rate_max=float(r) * factor_max, mean_rate=float(r))
        )
    return procs


def diurnal_trace(
    base_rates: Sequence[float],
    horizon: float,
    period: float = 24.0,
    trough: float = 0.25,
    peak: float = 1.6,
    seed: int = 0,
    class_names: Sequence[str] | None = None,
) -> ArrivalTrace:
    """Synthesize a sinusoidal-day arrival trace."""
    profile = diurnal_profile(period=period, trough=trough, peak=peak)
    procs = profile_processes(profile, base_rates, horizon, factor_max=peak * 1.001)
    return generate_trace(procs, horizon, seed=seed, class_names=class_names)


def flash_crowd_trace(
    base_rates: Sequence[float],
    horizon: float,
    surge_start: float,
    surge_duration: float,
    surge_factor: float,
    period: float = 24.0,
    trough: float = 0.25,
    peak: float = 1.6,
    seed: int = 0,
    class_names: Sequence[str] | None = None,
) -> ArrivalTrace:
    """A diurnal day with an unforecastable rectangular surge."""
    base_profile = diurnal_profile(period=period, trough=trough, peak=peak)
    profile = flash_crowd_profile(base_profile, surge_start, surge_duration, surge_factor)
    procs = profile_processes(
        profile, base_rates, horizon, factor_max=peak * surge_factor * 1.001
    )
    return generate_trace(procs, horizon, seed=seed, class_names=class_names)


def bursty_trace(
    base_rates: Sequence[float],
    horizon: float,
    burst_factor: float = 4.0,
    mean_burst: float = 1.0,
    mean_quiet: float = 4.0,
    seed: int = 0,
    class_names: Sequence[str] | None = None,
) -> ArrivalTrace:
    """MMPP-2 arrivals whose long-run per-class rates equal
    ``base_rates`` but which alternate quiet and burst phases.

    The burst state runs at ``burst_factor`` times the quiet state's
    rate; mean sojourns are ``mean_burst`` / ``mean_quiet`` time units.
    """
    base = np.asarray(base_rates, dtype=float)
    if base.ndim != 1 or base.size == 0 or np.any(base <= 0.0):
        raise ModelValidationError("base_rates must be a non-empty vector of rates > 0")
    if burst_factor <= 1.0:
        raise ModelValidationError(f"burst factor must exceed 1, got {burst_factor}")
    if mean_burst <= 0.0 or mean_quiet <= 0.0:
        raise ModelValidationError("mean sojourn times must be positive")
    r01 = 1.0 / mean_quiet  # quiet -> burst
    r10 = 1.0 / mean_burst  # burst -> quiet
    # Stationary mixture pi0*q + pi1*burst_factor*q = base rate.
    pi0 = r10 / (r01 + r10)
    pi1 = r01 / (r01 + r10)
    procs = []
    for r in base:
        quiet = float(r) / (pi0 + pi1 * burst_factor)
        procs.append(MMPP2(rate0=quiet, rate1=quiet * burst_factor, r01=r01, r10=r10))
    return generate_trace(procs, horizon, seed=seed, class_names=class_names)
