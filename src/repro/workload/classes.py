"""Customer classes and the multi-class workload container."""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = ["CustomerClass", "Workload"]


@dataclass(frozen=True)
class CustomerClass:
    """One priority class of customers.

    Attributes
    ----------
    name:
        Class label ("gold", "silver", ...). Order within a
        :class:`Workload` defines priority: first = highest.
    arrival_rate:
        Poisson arrival rate ``λ_k`` (requests / second), ``> 0``.
    weight:
        Optional revenue/importance weight used by weighted-objective
        variants; defaults to 1.
    """

    name: str
    arrival_rate: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0 or not np.isfinite(self.arrival_rate):
            raise ModelValidationError(
                f"class {self.name!r}: arrival rate must be positive and finite, got {self.arrival_rate}"
            )
        if self.weight <= 0.0 or not np.isfinite(self.weight):
            raise ModelValidationError(
                f"class {self.name!r}: weight must be positive and finite, got {self.weight}"
            )

    def with_rate(self, arrival_rate: float) -> "CustomerClass":
        """Copy with a different arrival rate."""
        return replace(self, arrival_rate=float(arrival_rate))


class Workload:
    """An ordered collection of :class:`CustomerClass` (highest priority
    first).

    Examples
    --------
    >>> w = Workload([CustomerClass("gold", 1.0), CustomerClass("bronze", 3.0)])
    >>> w.total_rate
    4.0
    >>> w.class_probabilities.tolist()
    [0.25, 0.75]
    """

    def __init__(self, classes: Sequence[CustomerClass]):
        if len(classes) == 0:
            raise ModelValidationError("workload needs at least one class")
        if not all(isinstance(c, CustomerClass) for c in classes):
            raise ModelValidationError("classes must be CustomerClass instances")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ModelValidationError(f"class names must be unique, got {names}")
        self.classes = list(classes)

    @property
    def num_classes(self) -> int:
        """Number of classes."""
        return len(self.classes)

    @property
    def names(self) -> list[str]:
        """Class names, highest priority first."""
        return [c.name for c in self.classes]

    @property
    def arrival_rates(self) -> np.ndarray:
        """Per-class arrival rates ``λ_k``, highest priority first."""
        return np.array([c.arrival_rate for c in self.classes])

    @property
    def weights(self) -> np.ndarray:
        """Per-class weights."""
        return np.array([c.weight for c in self.classes])

    @property
    def total_rate(self) -> float:
        """Aggregate arrival rate ``Λ = Σ_k λ_k``."""
        return float(self.arrival_rates.sum())

    @property
    def class_probabilities(self) -> np.ndarray:
        """``λ_k / Λ`` — the probability an arbitrary arrival is class k."""
        lam = self.arrival_rates
        return lam / lam.sum()

    def scaled(self, factor: float) -> "Workload":
        """Copy with every class's arrival rate multiplied by ``factor``.

        The load-sweep experiments (F1, F6) use this to push the same
        class mix toward saturation.
        """
        if factor <= 0.0 or not np.isfinite(factor):
            raise ModelValidationError(f"scale factor must be positive and finite, got {factor}")
        return Workload([c.with_rate(c.arrival_rate * factor) for c in self.classes])

    def index_of(self, name: str) -> int:
        """Priority index of the named class (0 = highest)."""
        try:
            return self.names.index(name)
        except ValueError:
            raise ModelValidationError(f"no class named {name!r}; have {self.names}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{c.name}:{c.arrival_rate:.4g}" for c in self.classes)
        return f"Workload([{body}])"
