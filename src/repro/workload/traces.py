"""Arrival traces: record, persist, replay.

The paper evaluates against synthetic Poisson workloads; production
adopters replay *traces*. This module provides:

* :class:`ArrivalTrace` — an immutable, per-class sequence of arrival
  timestamps with CSV persistence.
* :func:`generate_trace` — synthesize a trace from any
  :class:`repro.workload.ArrivalProcess` mix (Poisson, MMPP, batch),
  so recorded and synthetic workloads share one format.
* :class:`TraceArrivalProcess` — replays one class's timestamps inside
  the simulator, making trace-driven simulation a drop-in for the
  stochastic arrival processes.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ModelValidationError
from repro.workload.arrivals import ArrivalProcess

__all__ = ["ArrivalTrace", "TraceArrivalProcess", "generate_trace"]


class ArrivalTrace:
    """Per-class arrival timestamps over a recording horizon.

    Parameters
    ----------
    arrivals:
        One sorted, non-negative timestamp array per class.
    horizon:
        Length of the recording window; must cover every timestamp.
    class_names:
        Optional labels (defaults to ``class1..classK``).
    """

    def __init__(
        self,
        arrivals: Sequence[np.ndarray],
        horizon: float,
        class_names: Sequence[str] | None = None,
    ):
        if len(arrivals) == 0:
            raise ModelValidationError("trace needs at least one class")
        if horizon <= 0.0 or not np.isfinite(horizon):
            raise ModelValidationError(f"horizon must be positive and finite, got {horizon}")
        cleaned = []
        for k, ts in enumerate(arrivals):
            arr = np.asarray(ts, dtype=float)
            if arr.ndim != 1:
                raise ModelValidationError(f"class {k}: timestamps must be 1-D")
            if arr.size and (np.any(arr < 0.0) or np.any(arr > horizon)):
                raise ModelValidationError(
                    f"class {k}: timestamps must lie in [0, {horizon}]"
                )
            if np.any(np.diff(arr) < 0.0):
                raise ModelValidationError(f"class {k}: timestamps must be sorted")
            cleaned.append(arr)
        self.arrivals = cleaned
        self.horizon = float(horizon)
        if class_names is None:
            class_names = [f"class{k + 1}" for k in range(len(cleaned))]
        if len(class_names) != len(cleaned):
            raise ModelValidationError(
                f"got {len(cleaned)} classes but {len(class_names)} names"
            )
        self.class_names = list(class_names)

    @property
    def num_classes(self) -> int:
        """Number of traced classes."""
        return len(self.arrivals)

    def rates(self) -> np.ndarray:
        """Empirical per-class arrival rates over the horizon."""
        return np.array([ts.size / self.horizon for ts in self.arrivals])

    def windowed_rates(self, window: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-class arrival rates in consecutive windows.

        Returns ``(window_starts, rates)`` with ``rates`` of shape
        ``(num_windows, num_classes)`` — what a forecasting controller
        consumes.
        """
        if window <= 0.0 or window > self.horizon:
            raise ModelValidationError(
                f"window must be in (0, {self.horizon}], got {window}"
            )
        edges = np.arange(0.0, self.horizon + 1e-12, window)
        if edges[-1] < self.horizon:
            edges = np.append(edges, self.horizon)
        starts = edges[:-1]
        rates = np.empty((starts.size, self.num_classes))
        for k, ts in enumerate(self.arrivals):
            counts, _ = np.histogram(ts, bins=edges)
            rates[:, k] = counts / np.diff(edges)
        return starts, rates

    # -- persistence --------------------------------------------------------
    def to_csv(self) -> str:
        """Serialize as ``class,timestamp`` rows (header carries the
        horizon)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["# horizon", self.horizon])
        writer.writerow(["class", "timestamp"])
        for name, ts in zip(self.class_names, self.arrivals):
            for t in ts:
                writer.writerow([name, repr(float(t))])
        return buf.getvalue()

    def save_csv(self, path: str) -> None:
        """Write :meth:`to_csv` to ``path``."""
        with open(path, "w", newline="") as fh:
            fh.write(self.to_csv())

    @classmethod
    def from_csv(cls, text: str) -> "ArrivalTrace":
        """Parse a trace produced by :meth:`to_csv`."""
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
            if header[0] != "# horizon":
                raise ModelValidationError("missing horizon header")
            horizon = float(header[1])
            columns = next(reader)
            if columns != ["class", "timestamp"]:
                raise ModelValidationError(f"unexpected column header {columns}")
        except (StopIteration, IndexError, ValueError) as exc:
            raise ModelValidationError(f"malformed trace CSV: {exc}") from exc
        by_class: dict[str, list[float]] = {}
        order: list[str] = []
        for row in reader:
            if not row:
                continue
            name, t = row[0], float(row[1])
            if name not in by_class:
                by_class[name] = []
                order.append(name)
            by_class[name].append(t)
        if not order:
            raise ModelValidationError("trace CSV contains no arrivals")
        arrivals = [np.sort(np.asarray(by_class[name])) for name in order]
        return cls(arrivals, horizon=horizon, class_names=order)

    @classmethod
    def load_csv(cls, path: str) -> "ArrivalTrace":
        """Read a trace written by :meth:`save_csv`."""
        with open(path) as fh:
            return cls.from_csv(fh.read())


class TraceArrivalProcess(ArrivalProcess):
    """Replays one class's recorded timestamps.

    After the trace is exhausted the process goes silent (returns an
    infinite gap), so a simulation horizon at or below the trace
    horizon sees exactly the recorded arrivals.
    """

    def __init__(self, timestamps: np.ndarray, horizon: float):
        ts = np.asarray(timestamps, dtype=float)
        if ts.ndim != 1:
            raise ModelValidationError("timestamps must be 1-D")
        if np.any(np.diff(ts) < 0.0):
            raise ModelValidationError("timestamps must be sorted")
        if horizon <= 0.0:
            raise ModelValidationError(f"horizon must be positive, got {horizon}")
        self.timestamps = ts
        self.horizon = float(horizon)
        self._cursor = 0
        self._clock = 0.0

    @property
    def rate(self) -> float:
        return self.timestamps.size / self.horizon

    def next_arrival(self, rng: np.random.Generator) -> tuple[float, int]:
        if self._cursor >= self.timestamps.size:
            return float("inf"), 1  # silent forever
        t = self.timestamps[self._cursor]
        self._cursor += 1
        gap = t - self._clock
        self._clock = t
        return float(max(gap, 0.0)), 1

    def fresh(self) -> "TraceArrivalProcess":
        return TraceArrivalProcess(self.timestamps, self.horizon)

    @classmethod
    def from_trace(cls, trace: ArrivalTrace) -> list["TraceArrivalProcess"]:
        """One replay process per traced class (simulator-ready list)."""
        return [cls(ts, trace.horizon) for ts in trace.arrivals]


def generate_trace(
    processes: Sequence[ArrivalProcess],
    horizon: float,
    seed: int = 0,
    class_names: Sequence[str] | None = None,
) -> ArrivalTrace:
    """Synthesize a trace by running arrival processes to a horizon."""
    if len(processes) == 0:
        raise ModelValidationError("need at least one arrival process")
    if horizon <= 0.0 or not np.isfinite(horizon):
        raise ModelValidationError(f"horizon must be positive and finite, got {horizon}")
    rng_master = np.random.SeedSequence(seed).spawn(len(processes))
    arrivals = []
    for proc, seq in zip(processes, rng_master):
        rng = np.random.default_rng(seq)
        p = proc.fresh()
        t = 0.0
        stamps: list[float] = []
        while True:
            gap, batch = p.next_arrival(rng)
            t += gap
            if t > horizon:
                break
            stamps.extend([t] * batch)
        arrivals.append(np.asarray(stamps))
    return ArrivalTrace(arrivals, horizon=horizon, class_names=class_names)
