"""Workload model: customer classes and arrival processes.

The paper's setting: multiple *classes* of business customers share one
enterprise application; classes differ in arrival rate, service
demands, priority (class 1 pays most, gets served first) and SLA.
"""

from repro.workload.classes import CustomerClass, Workload
from repro.workload.arrivals import (
    ArrivalProcess,
    BatchPoissonProcess,
    MMPP2,
    NonHomogeneousPoisson,
    PoissonProcess,
    RenewalProcess,
)
from repro.workload.generator import scaled_workload, workload_from_rates
from repro.workload.traces import ArrivalTrace, TraceArrivalProcess, generate_trace

__all__ = [
    "CustomerClass",
    "Workload",
    "ArrivalProcess",
    "PoissonProcess",
    "MMPP2",
    "BatchPoissonProcess",
    "NonHomogeneousPoisson",
    "RenewalProcess",
    "scaled_workload",
    "workload_from_rates",
    "ArrivalTrace",
    "TraceArrivalProcess",
    "generate_trace",
]
