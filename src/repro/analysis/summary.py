"""Assemble per-experiment artifacts into one evaluation report.

The benchmarks write each reproduced table to
``benchmarks/results/<ID>_<slug>.txt``; :func:`build_summary` stitches
them into a single Markdown document in registry order, so the whole
evaluation can be read (or diffed between runs) as one file.
"""

from __future__ import annotations

import pathlib

from repro.exceptions import ModelValidationError

__all__ = ["build_summary"]


def build_summary(results_dir: str) -> str:
    """One Markdown report from a directory of rendered artifacts.

    Parameters
    ----------
    results_dir:
        Directory containing ``<ID>*.txt`` files (as written by the
        benchmark harness or ``python -m repro run-all --out-dir``).

    Raises
    ------
    ModelValidationError
        If the directory has no artifacts at all.
    """
    from repro.experiments.registry import REGISTRY

    root = pathlib.Path(results_dir)
    if not root.is_dir():
        raise ModelValidationError(f"{results_dir!r} is not a directory")

    sections: list[str] = [
        "# Reproduction evaluation report",
        "",
        f"Assembled from `{results_dir}`. One section per experiment, in",
        "registry order; see EXPERIMENTS.md for the expected shapes.",
    ]
    found = 0
    for exp in REGISTRY.values():
        matches = sorted(root.glob(f"{exp.id}_*.txt")) or sorted(root.glob(f"{exp.id}.txt"))
        if not matches:
            sections.append(f"\n## {exp.id} — {exp.title}\n\n*(no artifact found)*")
            continue
        found += 1
        body = matches[0].read_text().rstrip()
        sections.append(f"\n## {exp.id} — {exp.title}\n\n```\n{body}\n```")
    if found == 0:
        raise ModelValidationError(
            f"no experiment artifacts found under {results_dir!r}; run "
            "`pytest benchmarks/ --benchmark-only` or `python -m repro run-all --out-dir ...` first"
        )
    sections.append(f"\n---\n{found}/{len(REGISTRY)} experiments present.")
    return "\n".join(sections) + "\n"
