"""Reporting and validation utilities.

* ``tables``     — plain-text table rendering (the experiment harness
                   prints the same rows a paper table would hold).
* ``series``     — sweep containers with CSV export (one per figure).
* ``validation`` — analytic-vs-simulation comparison records and error
                   metrics, the backbone of experiments T1/T2/A1-A3.
"""

from repro.analysis.diagnostics import Finding, Severity, diagnose
from repro.analysis.tables import ascii_table, format_value
from repro.analysis.series import SweepSeries
from repro.analysis.summary import build_summary
from repro.analysis.validation import ValidationRow, ValidationReport, relative_error

__all__ = [
    "ascii_table",
    "format_value",
    "SweepSeries",
    "build_summary",
    "diagnose",
    "Finding",
    "Severity",
    "ValidationRow",
    "ValidationReport",
    "relative_error",
]
