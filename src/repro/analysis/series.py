"""Sweep-result containers — one per reproduced figure."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import ascii_table
from repro.exceptions import ModelValidationError

__all__ = ["SweepSeries"]


@dataclass
class SweepSeries:
    """A parameter sweep: one x-axis, several named y-series.

    Attributes
    ----------
    name:
        Figure identifier (e.g. "F3: delay vs energy budget").
    x_label:
        Name of the swept parameter.
    x:
        Sweep points.
    columns:
        Mapping series-name → values (same length as ``x``).
    """

    name: str
    x_label: str
    x: np.ndarray
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        for key in list(self.columns):
            col = np.asarray(self.columns[key], dtype=float)
            if col.shape != self.x.shape:
                raise ModelValidationError(
                    f"series {key!r} has shape {col.shape}, x has {self.x.shape}"
                )
            self.columns[key] = col

    def add(self, name: str, values) -> None:
        """Attach another y-series."""
        col = np.asarray(values, dtype=float)
        if col.shape != self.x.shape:
            raise ModelValidationError(f"series {name!r} has shape {col.shape}, x has {self.x.shape}")
        self.columns[name] = col

    def to_table(self, precision: int = 4) -> str:
        """Render as an aligned text table (the 'figure')."""
        headers = [self.x_label, *self.columns.keys()]
        rows = [
            [self.x[i], *(c[i] for c in self.columns.values())] for i in range(self.x.size)
        ]
        return ascii_table(headers, rows, title=self.name, precision=precision)

    def to_csv(self) -> str:
        """CSV text with the x column first."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow([self.x_label, *self.columns.keys()])
        for i in range(self.x.size):
            writer.writerow([self.x[i], *(c[i] for c in self.columns.values())])
        return buf.getvalue()

    def save_csv(self, path: str) -> None:
        """Write :meth:`to_csv` to ``path``."""
        with open(path, "w", newline="") as fh:
            fh.write(self.to_csv())
