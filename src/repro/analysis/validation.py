"""Analytic-vs-simulation validation records.

Experiments T1/T2 and the A-series ablations all reduce to the same
shape: a list of (quantity, analytic value, simulated value ± CI)
rows with relative errors, rendered as a table and summarized by the
worst error. These classes hold that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import ascii_table

__all__ = ["relative_error", "ValidationRow", "ValidationReport"]


def relative_error(analytic: float, simulated: float) -> float:
    """``|analytic − simulated| / |simulated|`` (NaN-safe).

    The simulated value is the reference: the question the paper's
    validation answers is "how far is the *formula* from reality".
    """
    if not (np.isfinite(analytic) and np.isfinite(simulated)) or simulated == 0.0:
        return float("nan")
    return abs(analytic - simulated) / abs(simulated)


@dataclass(frozen=True)
class ValidationRow:
    """One compared quantity."""

    label: str
    analytic: float
    simulated: float
    ci: float = float("nan")

    @property
    def rel_error(self) -> float:
        """Relative error of the analytic value vs simulation."""
        return relative_error(self.analytic, self.simulated)

    @property
    def within_ci(self) -> bool:
        """True when the analytic value lies inside the simulation CI."""
        if not np.isfinite(self.ci):
            return False
        return abs(self.analytic - self.simulated) <= self.ci


@dataclass
class ValidationReport:
    """A titled collection of validation rows."""

    title: str
    rows: list[ValidationRow] = field(default_factory=list)

    def add(self, label: str, analytic: float, simulated: float, ci: float = float("nan")) -> None:
        """Append one comparison."""
        self.rows.append(ValidationRow(label, float(analytic), float(simulated), float(ci)))

    @property
    def max_rel_error(self) -> float:
        """Worst relative error over the finite rows."""
        errs = [r.rel_error for r in self.rows if np.isfinite(r.rel_error)]
        return max(errs) if errs else float("nan")

    @property
    def mean_rel_error(self) -> float:
        """Average relative error over the finite rows."""
        errs = [r.rel_error for r in self.rows if np.isfinite(r.rel_error)]
        return float(np.mean(errs)) if errs else float("nan")

    def to_table(self, precision: int = 4) -> str:
        """Render the full comparison as text."""
        headers = ["quantity", "analytic", "simulated", "95% CI", "rel.err"]
        body = [
            [r.label, r.analytic, r.simulated, r.ci, r.rel_error] for r in self.rows
        ]
        return ascii_table(headers, body, title=self.title, precision=precision)
