"""Configuration diagnostics — the pre-flight checklist.

``diagnose(cluster, workload)`` inspects a configuration the way an
experienced capacity planner would and returns structured findings:
saturated or near-saturated tiers, the bottleneck, extreme demand
variability (where mean-based SLAs mislead), priority inversions
(a high-priority class so heavy it starves everyone), DVFS ranges
pinned at their limits, and idle-dominated power (where on/off beats
DVFS). Each finding carries a severity and a human-readable message;
none of them stops you — they explain the numbers you are about to
get.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError
from repro.workload.classes import Workload

__all__ = ["Severity", "Finding", "diagnose"]


class Severity(Enum):
    """How much a finding matters."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Finding:
    """One diagnostic observation."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value}] {self.code}: {self.message}"


def diagnose(cluster: ClusterModel, workload: Workload) -> list[Finding]:
    """Inspect a configuration and return findings, most severe first."""
    if cluster.num_classes != workload.num_classes:
        raise ModelValidationError(
            f"cluster is parameterized for {cluster.num_classes} classes "
            f"but workload has {workload.num_classes}"
        )
    findings: list[Finding] = []
    lam = workload.arrival_rates
    rho = cluster.utilizations(lam)

    # --- stability / load balance -----------------------------------------
    for tier, r in zip(cluster.tiers, rho):
        if r >= 1.0:
            findings.append(
                Finding(
                    Severity.CRITICAL,
                    "saturated-tier",
                    f"tier {tier.name!r} is saturated (rho = {r:.3f} >= 1): queues grow "
                    "without bound; add servers, raise speed, or shed load",
                )
            )
        elif r >= 0.9:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "near-saturation",
                    f"tier {tier.name!r} runs at rho = {r:.3f}; delays scale like "
                    "1/(1-rho), so small load increases will blow past any SLA",
                )
            )
    stable = rho[rho < 1.0]
    if stable.size == rho.size and rho.size > 1:
        bottleneck = int(np.argmax(rho))
        findings.append(
            Finding(
                Severity.INFO,
                "bottleneck",
                f"tier {cluster.tiers[bottleneck].name!r} is the bottleneck "
                f"(rho = {rho[bottleneck]:.3f}); capacity added elsewhere will not help",
            )
        )
        if rho.max() > 2.5 * max(rho.min(), 1e-12):
            findings.append(
                Finding(
                    Severity.INFO,
                    "load-imbalance",
                    f"tier utilizations span {rho.min():.2f}..{rho.max():.2f}; "
                    "per-tier speeds (P1/P2) or re-provisioning (P3) can rebalance",
                )
            )

    # --- demand variability -------------------------------------------------
    for tier in cluster.tiers:
        for k, d in enumerate(tier.demands):
            if d.scv > 10.0:
                findings.append(
                    Finding(
                        Severity.WARNING,
                        "extreme-variability",
                        f"class {workload.names[k]!r} at tier {tier.name!r} has demand "
                        f"SCV = {d.scv:.1f}; mean waits are dominated by rare huge jobs "
                        "and percentile SLAs will be far above the mean",
                    )
                )

    # --- priority inversion ---------------------------------------------------
    if workload.num_classes > 1:
        work_per_class = np.zeros(workload.num_classes)
        for i, tier in enumerate(cluster.tiers):
            means = np.array([d.mean for d in tier.demands])
            work_per_class += cluster.visit_ratios[:, i] * lam * means
        top_share = work_per_class[0] / work_per_class.sum()
        if top_share > 0.5:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "priority-inversion",
                    f"the highest-priority class carries {top_share:.0%} of the total "
                    "work; under head-of-line priority every other class sees a nearly "
                    "always-busy server — consider re-tiering the classes",
                )
            )

    # --- DVFS posture ----------------------------------------------------------
    for tier in cluster.tiers:
        if tier.speed >= tier.spec.max_speed - 1e-9:
            findings.append(
                Finding(
                    Severity.INFO,
                    "speed-at-max",
                    f"tier {tier.name!r} runs at its maximum speed; no delay headroom "
                    "is left in DVFS — only provisioning can improve it",
                )
            )
        elif tier.speed <= tier.spec.min_speed + 1e-9:
            findings.append(
                Finding(
                    Severity.INFO,
                    "speed-at-min",
                    f"tier {tier.name!r} runs at its minimum speed; energy can only be "
                    "reduced further by powering servers off",
                )
            )

    # --- power structure -----------------------------------------------------------
    idle_power = sum(t.servers * t.spec.power.idle for t in cluster.tiers)
    try:
        total_power = cluster.average_power(lam)
    except ModelValidationError:  # pragma: no cover - defensive
        total_power = float("nan")
    if np.isfinite(total_power) and total_power > 0 and idle_power / total_power > 0.7:
        findings.append(
            Finding(
                Severity.INFO,
                "idle-dominated-power",
                f"idle draw is {idle_power / total_power:.0%} of average power; DVFS has "
                "little to attack — server on/off (consolidation) is the bigger lever",
            )
        )

    order = {Severity.CRITICAL: 0, Severity.WARNING: 1, Severity.INFO: 2}
    findings.sort(key=lambda f: order[f.severity])
    return findings
