"""Timed micro-benchmarks of the library's hot kernels.

``python -m repro bench`` times each kernel (min over several repeats,
the standard noise-robust statistic), writes the results as JSON, and
— in ``--check`` mode — compares against a committed baseline so CI
can fail on real regressions.

Raw wall times are not comparable across machines, so every run also
times a **calibration kernel**: a fixed pure-Python spin loop whose
cost tracks the host's single-core speed. The check compares
*calibration-normalized* times (kernel seconds per calibration
second), which cancels the machine-speed factor between the committed
baseline and the CI runner. Gated kernels (default: the simulation
kernel) fail the check when their normalized time regresses beyond the
tolerance; everything else is reported but informational.
"""

from __future__ import annotations

import json
import platform
import time
from collections.abc import Callable

import numpy as np

__all__ = [
    "run_benchmarks",
    "compare_to_baseline",
    "history_entry",
    "append_history",
    "load_history",
    "check_history",
    "BenchSkip",
    "KERNELS",
    "DEFAULT_GATES",
    "DEFAULT_HISTORY",
]


class BenchSkip(Exception):
    """A kernel's setup declined to run on this host (missing optional
    capability, e.g. no C toolchain for the compiled simulation
    backend). The kernel is recorded as skipped instead of timed; a
    skipped *gated* kernel still fails ``--check`` — a gate that cannot
    run cannot vouch that it didn't regress."""

#: Default location of the append-only bench history (one JSON line per
#: recorded run; read by ``check_history`` and the dashboard).
DEFAULT_HISTORY = "benchmarks/results/BENCH_history.jsonl"

#: Kernels whose regression fails ``--check`` (others only report).
#: ``frontier_sweep_warm`` gates the continuation machinery: if warm
#: starts stop being accepted, the kernel collapses to the cold path
#: and its normalized time blows past the tolerance.
#: ``adaptive_vs_fixed`` gates the precision-targeted engine twice
#: over: the kernel itself *raises* when the adaptive run silently
#: falls back to the fixed replication count (so the bench errors out
#: long before any timing comparison), and its normalized time is
#: checked like the other gates.
#: ``sim_replication_h500_compiled`` gates the compiled event-loop
#: kernel: its setup *raises* when the compiled backend fails to beat
#: the pure-Python loop by the 10x acceptance floor, and its normalized
#: time is checked like the other gates (a fallback to pure Python is
#: ~15x slower and blows the tolerance immediately).
#: ``fleet_sweep_1k`` gates the fleet runner end to end: 1000
#: (scenario × replication) units through the work-stealing dispatch
#: path into a columnar store.
#: ``fleet_sweep_batched`` gates batched kernel dispatch: the same
#: 1000-unit sweep with multi-replication C calls must sustain at
#: least 3x the ``batch_size=1`` unit-at-a-time throughput (its setup
#: *raises* below the floor — losing the batch path is a regression
#: of the fleet throughput claim).
#: ``a7_epoch_compiled``, ``adaptive_antithetic_compiled`` and
#: ``sim_ps_h500_compiled`` gate the closed kernel support envelope:
#: epoch-controlled runs (the yield protocol), antithetic mirrored
#: streams and PS tiers each *raise* in setup when the compiled path
#: is less than 5x faster than the pure-Python engine — a silent
#: fallback for any of these classes re-opens the envelope and must
#: fail the bench outright, not drift past as a slowdown.
DEFAULT_GATES = (
    "sim_replication_h500",
    "sim_replication_h500_compiled",
    "fleet_sweep_1k",
    "fleet_sweep_batched",
    "frontier_sweep_warm",
    "adaptive_vs_fixed",
    "a7_epoch_compiled",
    "adaptive_antithetic_compiled",
    "sim_ps_h500_compiled",
)

#: Name of the machine-speed calibration kernel.
CALIBRATION = "calibration_spin"


def _kernel_calibration_spin() -> Callable[[], object]:
    def spin() -> int:
        acc = 0
        for i in range(2_000_000):
            acc += i & 7
        return acc

    return spin


def _kernel_sim_replication_h500() -> Callable[[], object]:
    from repro.experiments.common import canonical_cluster, canonical_workload
    from repro.simulation import simulate

    cluster, workload = canonical_cluster(), canonical_workload()
    return lambda: simulate(cluster, workload, horizon=500.0, seed=99)


def _kernel_sim_replication_h500_compiled() -> Callable[[], object]:
    """The same replication as ``sim_replication_h500`` on the compiled
    C event-loop kernel.

    Setup enforces the acceptance floor: it times both backends once
    (min over 3) and **raises** when the compiled kernel is less than
    10x faster than the pure-Python loop — a silent fallback or a
    de-optimized kernel is a correctness-of-claim regression, not a
    slowdown, and must fail the bench outright. Hosts without a C
    toolchain skip via :class:`BenchSkip` (which still fails the gate
    under ``--check``).
    """
    import os

    from repro.experiments.common import canonical_cluster, canonical_workload
    from repro.simulation import simulate
    from repro.simulation.compiled import kernel_available, kernel_status

    if not kernel_available():
        raise BenchSkip(f"compiled kernel unavailable: {kernel_status()['error']}")
    cluster, workload = canonical_cluster(), canonical_workload()

    def once(backend: str) -> float:
        prev = os.environ.get("REPRO_SIM_BACKEND")
        os.environ["REPRO_SIM_BACKEND"] = backend
        try:
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                simulate(cluster, workload, horizon=500.0, seed=99)
                best = min(best, time.perf_counter() - t0)
            return best
        finally:
            if prev is None:
                os.environ.pop("REPRO_SIM_BACKEND", None)
            else:
                os.environ["REPRO_SIM_BACKEND"] = prev

    t_compiled = once("compiled")  # first call also pays the one-time build
    t_python = once("python")
    speedup = t_python / t_compiled if t_compiled > 0 else float("inf")
    if speedup < 10.0:
        raise RuntimeError(
            f"compiled backend speedup {speedup:.1f}x below the 10x acceptance "
            f"floor (python {t_python * 1e3:.2f} ms, compiled {t_compiled * 1e3:.2f} ms)"
        )
    extra = {"speedup_vs_python": round(speedup, 2)}

    def run() -> dict:
        prev = os.environ.get("REPRO_SIM_BACKEND")
        os.environ["REPRO_SIM_BACKEND"] = "compiled"
        try:
            simulate(cluster, workload, horizon=500.0, seed=99)
        finally:
            if prev is None:
                os.environ.pop("REPRO_SIM_BACKEND", None)
            else:
                os.environ["REPRO_SIM_BACKEND"] = prev
        return {"bench_extra": extra}

    return run


def _compiled_floor_setup(
    once: Callable[[], object], floor: float, label: str
) -> tuple[dict, Callable[[], object]]:
    """Shared setup for the compiled-envelope gate kernels.

    Times ``once`` (min over 3) under each backend, **raises** when the
    compiled path is less than ``floor``x faster than the pure-Python
    engine — for these kernels a silent fallback is a correctness-of-
    claim regression, not a slowdown — and returns the ``bench_extra``
    speedup record plus a closure running ``once`` compiled. Hosts
    without a C toolchain skip via :class:`BenchSkip`.
    """
    import os

    from repro.simulation.compiled import kernel_available, kernel_status

    if not kernel_available():
        raise BenchSkip(f"compiled kernel unavailable: {kernel_status()['error']}")

    def timed(backend: str) -> float:
        prev = os.environ.get("REPRO_SIM_BACKEND")
        os.environ["REPRO_SIM_BACKEND"] = backend
        try:
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                once()
                best = min(best, time.perf_counter() - t0)
            return best
        finally:
            if prev is None:
                os.environ.pop("REPRO_SIM_BACKEND", None)
            else:
                os.environ["REPRO_SIM_BACKEND"] = prev

    t_compiled = timed("compiled")  # first call also pays the one-time build
    t_python = timed("python")
    speedup = t_python / t_compiled if t_compiled > 0 else float("inf")
    if speedup < floor:
        raise RuntimeError(
            f"{label}: compiled speedup {speedup:.1f}x below the {floor:g}x "
            f"acceptance floor (python {t_python * 1e3:.2f} ms, "
            f"compiled {t_compiled * 1e3:.2f} ms)"
        )
    extra = {"speedup_vs_python": round(speedup, 2)}

    def run() -> dict:
        prev = os.environ.get("REPRO_SIM_BACKEND")
        os.environ["REPRO_SIM_BACKEND"] = "compiled"
        try:
            once()
        finally:
            if prev is None:
                os.environ.pop("REPRO_SIM_BACKEND", None)
            else:
                os.environ["REPRO_SIM_BACKEND"] = prev
        return {"bench_extra": extra}

    return extra, run


def _kernel_a7_epoch_compiled() -> Callable[[], object]:
    """The A7 controller-in-the-loop run on the compiled kernel.

    Same scenario as ``controller_epoch`` (drift-plus-penalty speed
    decisions on a diurnal trace; 100 epoch boundaries at epoch length
    2.0), but through the kernel's epoch-boundary yield protocol: the
    C loop pauses at each boundary, surfaces queue backlogs and
    segmented energy to the Python controller, applies the returned
    speeds via the work-preserving rescale, and resumes. The per-epoch
    controller work runs in Python under *both* backends, so finer
    epochs shrink the measurable gap (Amdahl); length 2.0 keeps the
    yield protocol hot while the event loop still dominates. Setup
    raises below the 5x acceptance floor vs the pure-Python engine.
    """
    from repro.control import DriftPlusPenaltyController, run_controlled
    from repro.experiments.common import CLASS_NAMES, canonical_cluster, canonical_workload
    from repro.workload.timevarying import diurnal_trace

    cluster = canonical_cluster()
    base = canonical_workload().arrival_rates
    horizon = 200.0
    trace = diurnal_trace(
        base, horizon, period=horizon, trough=0.5, peak=1.3, seed=17,
        class_names=CLASS_NAMES,
    )
    policy = DriftPlusPenaltyController(cluster, v_param=5e-4)

    def once() -> object:
        return run_controlled(
            cluster, trace, policy, 2.0, max_mean_delay=0.35, seed=17
        )

    _extra, run = _compiled_floor_setup(once, 5.0, "a7_epoch_compiled")
    return run


def _kernel_adaptive_antithetic_compiled() -> Callable[[], object]:
    """The adaptive precision engine's antithetic estimator on the
    compiled kernel.

    One precision-targeted run (5% relative CI on mean delay) with
    ``estimator="antithetic"``: every replication is a mirrored-stream
    pair, exercising the kernel's pre-drawn coupled uniform blocks.
    Setup raises below the 5x acceptance floor vs the pure-Python
    engine, and the timed closure raises if the run stops certifying
    its target.
    """
    from repro.experiments.common import small_cluster, small_workload
    from repro.simulation import PrecisionTarget, simulate_replications_adaptive

    cluster, workload = small_cluster(), small_workload()
    target = PrecisionTarget(
        estimator="antithetic",
        rel_ci={"mean_delay": 0.05},
        min_replications=4,
        max_replications=32,
        round_size=2,
    )

    def once() -> object:
        rep = simulate_replications_adaptive(
            cluster, workload, horizon=500.0, target=target, seed=123
        )
        if not rep.meta["adaptive"]["target_met"]:
            raise RuntimeError(
                "antithetic adaptive run missed the precision target it is "
                f"benched on (n_simulated={rep.meta['adaptive']['n_simulated']})"
            )
        return rep

    _extra, run = _compiled_floor_setup(once, 5.0, "adaptive_antithetic_compiled")
    return run


def _kernel_sim_ps_h500_compiled() -> Callable[[], object]:
    """One h=500 replication of the canonical cluster with PS tiers on
    the compiled kernel (the C processor-sharing service law: equal
    shares above capacity, remaining-work rescheduling on every
    arrival/departure). Setup raises below the 5x acceptance floor vs
    the pure-Python engine.
    """
    from repro.experiments.common import canonical_cluster, canonical_workload
    from repro.simulation import simulate

    cluster = canonical_cluster(discipline="ps")
    workload = canonical_workload()

    def once() -> object:
        return simulate(cluster, workload, horizon=500.0, seed=99)

    _extra, run = _compiled_floor_setup(once, 5.0, "sim_ps_h500_compiled")
    return run


def _kernel_fleet_sweep_1k() -> Callable[[], object]:
    """1000 (scenario × replication) units through the fleet runner.

    Serial dispatch (process-pool start-up would dominate a micro
    benchmark and add scheduler noise) on the small validation
    cluster, streaming into an npz-format columnar store in a
    temporary directory — the end-to-end per-unit overhead of the
    fleet path: seed derivation, simulation, row distillation, and
    buffered columnar writes. Raises when any unit fails.
    """
    import shutil
    import tempfile

    from repro.experiments.common import small_cluster, small_workload
    from repro.simulation import FleetScenario, run_fleet

    cluster = small_cluster()
    scenarios = [
        FleetScenario(
            label=f"load={f:g}",
            cluster=cluster,
            workload=small_workload(f),
            horizon=10.0,
            params={"load_factor": f},
        )
        for f in (0.5, 0.7, 0.9, 1.1)
    ]

    def run() -> dict:
        tmp = tempfile.mkdtemp(prefix="repro-fleet-bench-")
        try:
            summary = run_fleet(
                scenarios,
                250,
                f"{tmp}/store",
                seed=7,
                n_jobs=1,
                store_format="npz",
                progress_every=1e9,
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        if summary.n_done != 1000 or summary.n_failed:
            raise RuntimeError(
                f"fleet sweep completed {summary.n_done}/1000 units "
                f"({summary.n_failed} failed)"
            )
        return {
            "bench_extra": {
                "n_units": summary.n_done,
                "units_per_sec": round(summary.units_per_sec, 1),
            }
        }

    return run


def _kernel_fleet_sweep_batched() -> Callable[[], object]:
    """The ``fleet_sweep_1k`` workload through batched kernel dispatch.

    Same 1000-unit grid as ``fleet_sweep_1k``, compiled backend,
    serial: each replication chunk is one multi-replication C call
    (kernel state and RNG arenas allocated once per chunk, reset
    between replications) with chunk results appended columnar. Setup
    times the same sweep at ``batch_size=1`` (the unit-at-a-time
    dispatch path) and **raises** when batching is less than 3x the
    unbatched units/sec — losing the batch path is a regression of the
    fleet throughput claim, not a slowdown. Hosts without a C
    toolchain skip. Rows are bit-identical either way (covered by
    ``tests/test_fleet_batch.py``); this kernel gates only the
    throughput.
    """
    import shutil
    import tempfile

    from repro.experiments.common import small_cluster, small_workload
    from repro.simulation import FleetScenario, run_fleet
    from repro.simulation.compiled import kernel_available, kernel_status, warm_kernel

    if not kernel_available():
        raise BenchSkip(f"compiled kernel unavailable: {kernel_status()['error']}")
    warm_kernel()

    cluster = small_cluster()
    scenarios = [
        FleetScenario(
            label=f"load={f:g}",
            cluster=cluster,
            workload=small_workload(f),
            horizon=10.0,
            params={"load_factor": f},
        )
        for f in (0.5, 0.7, 0.9, 1.1)
    ]

    def sweep(batch_size: int | str) -> float:
        tmp = tempfile.mkdtemp(prefix="repro-fleet-batch-bench-")
        try:
            summary = run_fleet(
                scenarios,
                250,
                f"{tmp}/store",
                seed=7,
                n_jobs=1,
                backend="compiled",
                batch_size=batch_size,
                store_format="npz",
                progress_every=1e9,
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        if summary.n_done != 1000 or summary.n_failed:
            raise RuntimeError(
                f"batched fleet sweep completed {summary.n_done}/1000 units "
                f"({summary.n_failed} failed)"
            )
        return summary.wall_time_s

    t_unbatched = min(sweep(1) for _ in range(2))
    t_batched = min(sweep("auto") for _ in range(2))
    speedup = t_unbatched / t_batched if t_batched > 0 else float("inf")
    if speedup < 3.0:
        raise RuntimeError(
            f"fleet_sweep_batched: batched dispatch {speedup:.1f}x below the 3x "
            f"acceptance floor vs batch_size=1 (unbatched {t_unbatched * 1e3:.0f} ms, "
            f"batched {t_batched * 1e3:.0f} ms)"
        )
    extra = {"speedup_vs_unbatched": round(speedup, 2)}

    def run() -> dict:
        wall = sweep("auto")
        return {
            "bench_extra": {
                **extra,
                "units_per_sec": round(1000.0 / wall, 1),
            }
        }

    return run


def _kernel_analytic_eval_x100() -> Callable[[], object]:
    from repro.core.delay import end_to_end_delays
    from repro.core.energy import average_power
    from repro.experiments.common import canonical_cluster, canonical_workload

    cluster, workload = canonical_cluster(), canonical_workload()

    def run() -> float:
        total = 0.0
        for _ in range(100):
            total += float(end_to_end_delays(cluster, workload).sum())
            total += average_power(cluster, workload)
        return total

    return run


def _kernel_batch_eval_100() -> Callable[[], object]:
    from repro.core.batch_eval import BatchEvaluator
    from repro.experiments.common import canonical_cluster, canonical_workload

    cluster, workload = canonical_cluster(), canonical_workload()
    evaluator = BatchEvaluator(cluster, workload)
    rng = np.random.default_rng(0)
    speeds = rng.uniform(0.6, 1.0, size=(100, cluster.num_tiers))
    return lambda: (
        evaluator.end_to_end_delays(speeds),
        evaluator.average_power(speeds),
    )


def _kernel_percentile_batch_x50() -> Callable[[], object]:
    from repro.core.percentile import all_class_percentiles_batch
    from repro.experiments.common import canonical_cluster, canonical_workload

    cluster, workload = canonical_cluster(), canonical_workload()
    rng = np.random.default_rng(1)
    speeds = rng.uniform(0.7, 1.0, size=(50, cluster.num_tiers))
    return lambda: all_class_percentiles_batch(cluster, workload, speeds, 0.95)


def _kernel_p1_solve_3starts() -> Callable[[], object]:
    from repro.core import minimize_delay
    from repro.experiments.common import canonical_cluster, canonical_workload

    cluster, workload = canonical_cluster(), canonical_workload()
    budget = 0.9 * cluster.average_power(workload.arrival_rates)
    return lambda: minimize_delay(cluster, workload, budget, n_starts=3)


def _frontier_sweep(warm_start: bool) -> Callable[[], object]:
    from repro.core.opt_delay import minimize_delay
    from repro.experiments.common import canonical_cluster, canonical_workload, stability_box_profile
    from repro.optimize.sweep import continuation_sweep

    cluster, workload = canonical_cluster(), canonical_workload()
    profile = stability_box_profile(cluster, workload)
    budgets = np.linspace(profile.min_power * 1.02, profile.max_power, 6)

    def solve(budget, hint):
        return minimize_delay(
            cluster, workload, power_budget=float(budget), n_starts=3, x0_hint=hint
        )

    return lambda: continuation_sweep(solve, budgets, warm_start=warm_start)


def _kernel_frontier_sweep_warm() -> Callable[[], object]:
    return _frontier_sweep(warm_start=True)


def _kernel_frontier_sweep_cold() -> Callable[[], object]:
    return _frontier_sweep(warm_start=False)


def _total_events(rep) -> int:
    return sum(int(rec["n_events"]) for rec in rep.meta["replications"])


def _kernel_adaptive_vs_fixed() -> Callable[[], object]:
    """Adaptive CV-stopping engine vs the naive-stopping baseline.

    Both engines chase the same absolute precision target (5% relative
    CI on mean delay, 0.4% on average power — the T1/T2 headline
    metrics) on the small validation cluster. The *untimed* setup runs
    the baseline: the replication count a fixed-count engine with
    plain sample-mean CIs needs to certify that target. The timed
    closure is the adaptive run with the control-variate stopping
    estimator, which certifies the same target from far fewer
    replications. The closure **raises** when the engine fails to beat
    the baseline by the 30% simulated-event acceptance floor — a
    silent fallback to naive stopping is a correctness regression, not
    a slowdown, and must fail the bench outright. The ``bench_extra``
    record carries the event savings and the realized variance-
    reduction factors.
    """
    from repro.experiments.common import small_cluster, small_workload
    from repro.simulation import PrecisionTarget, simulate_replications_adaptive

    cluster, workload = small_cluster(), small_workload()
    horizon, seed = 500.0, 123
    rel_targets = {"mean_delay": 0.05, "average_power": 0.004}
    common = dict(rel_ci=rel_targets, min_replications=3, max_replications=32, round_size=1)
    baseline = simulate_replications_adaptive(
        cluster,
        workload,
        horizon=horizon,
        target=PrecisionTarget(estimator="naive", **common),
        seed=seed,
    )
    base_ad = baseline.meta["adaptive"]
    if not base_ad["target_met"]:
        raise RuntimeError(
            "naive baseline no longer certifies the bench precision target "
            f"within {common['max_replications']} replications"
        )
    events_fixed = _total_events(baseline)
    target = PrecisionTarget(estimator="cv", **common)

    def run() -> dict:
        rep = simulate_replications_adaptive(
            cluster, workload, horizon=horizon, target=target, seed=seed
        )
        ad = rep.meta["adaptive"]
        events_adaptive = _total_events(rep)
        savings = 1.0 - events_adaptive / events_fixed
        if not ad["target_met"]:
            raise RuntimeError(
                "adaptive engine missed the precision target it is benched on "
                f"(n_simulated={ad['n_simulated']})"
            )
        if savings < 0.30:
            raise RuntimeError(
                f"adaptive event savings {savings:.1%} below the 30% acceptance "
                f"floor (naive n={base_ad['n_simulated']}, cv n={ad['n_simulated']})"
            )
        return {
            "bench_extra": {
                "n_fixed": base_ad["n_simulated"],
                "n_adaptive": ad["n_simulated"],
                "events_fixed": events_fixed,
                "events_adaptive": events_adaptive,
                "event_savings": round(savings, 4),
                "target_rel_ci": rel_targets,
                "achieved_rel_ci": {
                    m: round(e["rel_halfwidth"], 5) for m, e in ad["estimates"].items()
                },
                "vr_factor": {m: round(v, 2) for m, v in ad["vr_factor"].items()},
            }
        }

    return run


def _kernel_crn_paired() -> Callable[[], object]:
    """CRN-paired scenario comparison (NP vs PR discipline).

    Times one :func:`compare_scenarios` call and records — via
    ``bench_extra`` — how much tighter the paired-t difference CI is
    than the independent-streams Welch CI at the same replication
    count. Raises when CRN pairing stops helping on the headline
    metric (correlation lost ⇒ the shared-seed contract broke).
    """
    from repro.experiments.common import canonical_cluster, canonical_workload
    from repro.simulation import Scenario, compare_scenarios

    workload = canonical_workload()
    scenario_np = Scenario(
        canonical_cluster(discipline="priority_np"), workload, label="priority_np"
    )
    scenario_pr = Scenario(
        canonical_cluster(discipline="priority_pr"), workload, label="priority_pr"
    )

    def run() -> dict:
        comp = compare_scenarios(
            scenario_np, scenario_pr, horizon=400.0, n_replications=5, seed=321
        )
        headline = comp.metrics["mean_delay"]
        if headline["vr_factor"] <= 1.0:
            raise RuntimeError(
                "CRN pairing no longer reduces the mean-delay difference CI "
                f"(vr_factor={headline['vr_factor']:.2f}) — shared-seed contract broken"
            )
        return {
            "bench_extra": {
                "metrics": {
                    m: {
                        "paired_hw": round(rec["paired"].halfwidth, 6),
                        "independent_hw": round(rec["independent"].halfwidth, 6),
                        "correlation": round(rec["correlation"], 4),
                        "vr_factor": round(rec["vr_factor"], 2),
                    }
                    for m, rec in comp.metrics.items()
                }
            }
        }

    return run


def _kernel_controller_epoch() -> Callable[[], object]:
    """Controller-in-the-loop simulation (info-only, not gated).

    Times one trace-driven run with a drift-plus-penalty controller
    firing every 0.5 time units — 400 epoch boundaries, each doing a
    queue observation, a closed-form speed decision, a work-preserving
    rescale and a segmented-energy accrual. Records the per-epoch
    overhead via ``bench_extra``.
    """
    import numpy as np

    from repro.control import DriftPlusPenaltyController, run_controlled
    from repro.experiments.common import CLASS_NAMES, canonical_cluster, canonical_workload
    from repro.workload.timevarying import diurnal_trace

    cluster = canonical_cluster()
    base = canonical_workload().arrival_rates
    horizon = 200.0
    trace = diurnal_trace(
        base, horizon, period=horizon, trough=0.5, peak=1.3, seed=17,
        class_names=CLASS_NAMES,
    )
    policy = DriftPlusPenaltyController(cluster, v_param=5e-4)
    epoch_length = 0.5

    def run() -> dict:
        score = run_controlled(
            cluster, trace, policy, epoch_length, max_mean_delay=0.35, seed=17
        )
        n_epochs = len(score.epoch_trace)
        if n_epochs != int(np.ceil(horizon / epoch_length)):
            raise RuntimeError(
                f"epoch hook fired {n_epochs} times, expected "
                f"{int(np.ceil(horizon / epoch_length))} — boundary scheduling broke"
            )
        return {
            "bench_extra": {
                "n_epochs": n_epochs,
                "mean_delay": round(score.mean_delay, 4),
                "average_power": round(score.average_power, 2),
            }
        }

    return run


def _kernel_exhaustive_small_12() -> Callable[[], object]:
    from repro.baselines.exhaustive import exhaustive_cost_minimization
    from repro.experiments.common import small_cluster, small_sla, small_workload

    cluster, workload, sla = small_cluster(), small_workload(), small_sla()
    return lambda: exhaustive_cost_minimization(cluster, workload, sla, max_servers_per_tier=12)


def _kernel_exhaustive_canonical_10() -> Callable[[], object]:
    from repro.baselines.exhaustive import exhaustive_cost_minimization
    from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload

    cluster, workload, sla = canonical_cluster(), canonical_workload(), canonical_sla()
    return lambda: exhaustive_cost_minimization(cluster, workload, sla, max_servers_per_tier=10)


#: name -> zero-arg setup function returning the timed closure. Setup
#: cost (model construction, RNG draws) stays outside the timing.
KERNELS: dict[str, Callable[[], Callable[[], object]]] = {
    CALIBRATION: _kernel_calibration_spin,
    "sim_replication_h500": _kernel_sim_replication_h500,
    "sim_replication_h500_compiled": _kernel_sim_replication_h500_compiled,
    "a7_epoch_compiled": _kernel_a7_epoch_compiled,
    "adaptive_antithetic_compiled": _kernel_adaptive_antithetic_compiled,
    "sim_ps_h500_compiled": _kernel_sim_ps_h500_compiled,
    "fleet_sweep_1k": _kernel_fleet_sweep_1k,
    "fleet_sweep_batched": _kernel_fleet_sweep_batched,
    "analytic_eval_x100": _kernel_analytic_eval_x100,
    "batch_eval_100": _kernel_batch_eval_100,
    "percentile_batch_x50": _kernel_percentile_batch_x50,
    "p1_solve_3starts": _kernel_p1_solve_3starts,
    "adaptive_vs_fixed": _kernel_adaptive_vs_fixed,
    "crn_paired": _kernel_crn_paired,
    "controller_epoch": _kernel_controller_epoch,
    "frontier_sweep_warm": _kernel_frontier_sweep_warm,
    "frontier_sweep_cold": _kernel_frontier_sweep_cold,
    "exhaustive_small_12": _kernel_exhaustive_small_12,
    "exhaustive_canonical_10": _kernel_exhaustive_canonical_10,
}


def run_benchmarks(
    repeats: int = 5, only: list[str] | None = None
) -> dict:
    """Time every kernel; returns the JSON-serializable result document.

    Each kernel runs once untimed (warm-up: imports, caches) and then
    ``repeats`` timed runs; ``min_s`` is the minimum — the repeat least
    disturbed by other load, the standard micro-benchmark statistic.
    """
    names = list(KERNELS) if only is None else list(only)
    unknown = [n for n in names if n not in KERNELS]
    if unknown:
        raise ValueError(f"unknown kernels {unknown}; available: {list(KERNELS)}")
    if CALIBRATION not in names:
        names.insert(0, CALIBRATION)
    kernels: dict[str, dict] = {}
    for name in names:
        try:
            fn = KERNELS[name]()
        except BenchSkip as exc:
            kernels[name] = {"skipped": str(exc)}
            continue
        fn()  # warm-up, untimed
        runs = []
        last = None
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            last = fn()
            runs.append(time.perf_counter() - t0)
        kernels[name] = {"min_s": min(runs), "runs_s": [round(r, 6) for r in runs]}
        # Kernels measuring more than speed (event savings, variance
        # reduction) return {"bench_extra": ...}; the record rides
        # along in the JSON document next to the timings.
        if isinstance(last, dict) and "bench_extra" in last:
            kernels[name]["extra"] = last["bench_extra"]
    return {
        "schema": 1,
        "created_unix": int(time.time()),
        "repeats": repeats,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "kernels": kernels,
    }


def compare_to_baseline(
    current: dict,
    baseline: dict,
    tolerance: float = 0.25,
    gates: tuple[str, ...] = DEFAULT_GATES,
) -> tuple[list[str], list[str]]:
    """Compare a bench run against a baseline document.

    Returns ``(report_lines, failures)``: one human-readable line per
    kernel present in both documents, and the subset of *gated* kernels
    whose calibration-normalized time regressed by more than
    ``tolerance`` (25% default). An empty ``failures`` list means the
    check passed.
    """
    cur_k = current["kernels"]
    base_k = baseline["kernels"]
    cal_cur = cur_k.get(CALIBRATION, {}).get("min_s")
    cal_base = base_k.get(CALIBRATION, {}).get("min_s")
    normalized = bool(cal_cur and cal_base)
    scale = (cal_base / cal_cur) if normalized else 1.0
    lines = []
    failures = []
    for name in sorted(set(cur_k) & set(base_k)):
        if name == CALIBRATION:
            continue
        gated_now = name in gates
        if "min_s" not in cur_k[name] or "min_s" not in base_k[name]:
            # Skipped on this host (or in the baseline): a gated kernel
            # that cannot run cannot vouch that it didn't regress.
            reason = cur_k[name].get("skipped") or base_k[name].get("skipped") or "?"
            status = "SKIPPED-GATE-FAILED" if gated_now else "skipped"
            if gated_now:
                failures.append(name)
            lines.append(
                f"{name:28s} skipped ({reason}) [{'gate' if gated_now else 'info'}] {status}"
            )
            continue
        cur = cur_k[name]["min_s"]
        base = base_k[name]["min_s"]
        # >1 means slower than baseline after machine-speed correction.
        ratio = (cur * scale) / base if base > 0 else float("inf")
        gated = name in gates
        status = "ok"
        if gated and ratio > 1.0 + tolerance:
            status = "REGRESSION"
            failures.append(name)
        lines.append(
            f"{name:28s} {cur * 1e3:9.2f} ms (baseline {base * 1e3:9.2f} ms, "
            f"normalized x{ratio:.2f}) [{'gate' if gated else 'info'}] {status}"
        )
    if normalized:
        lines.append(
            f"machine-speed correction x{scale:.2f} "
            f"(calibration {cal_cur * 1e3:.1f} ms vs baseline {cal_base * 1e3:.1f} ms)"
        )
    else:
        lines.append("no calibration kernel in one of the documents — raw-time comparison")
    return lines, failures


def history_entry(doc: dict) -> dict:
    """Distill one bench document into an append-only history line.

    Times are stored **calibration-normalized** (kernel seconds per
    calibration second), so entries recorded on different machines sit
    on one comparable series — the same trick ``compare_to_baseline``
    uses, applied at write time instead of read time.
    """
    kernels = doc.get("kernels", {})
    cal = kernels.get(CALIBRATION, {}).get("min_s")
    if not cal:
        raise ValueError(f"bench document has no {CALIBRATION} kernel — cannot normalize")
    return {
        "schema": 1,
        "created_unix": doc.get("created_unix", int(time.time())),
        "host": doc.get("host", {}).get("platform"),
        "kernels": {
            name: round(rec["min_s"] / cal, 6)
            for name, rec in kernels.items()
            if name != CALIBRATION and "min_s" in rec
        },
    }


def load_history(path: str) -> list[dict]:
    """Parse a ``BENCH_history.jsonl`` (missing file → empty history)."""
    entries: list[dict] = []
    try:
        fh = open(path)
    except FileNotFoundError:
        return entries
    with fh:
        for line in fh:
            if line.strip():
                entries.append(json.loads(line))
    return entries


def append_history(doc: dict, path: str) -> dict:
    """Append ``doc``'s history entry to the JSONL at ``path``."""
    import os

    entry = history_entry(doc)
    dirname = os.path.dirname(path)
    if dirname:
        os.makedirs(dirname, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def check_history(
    doc: dict,
    history: list[dict],
    tolerance: float = 0.5,
    window: int = 5,
    gates: tuple[str, ...] = DEFAULT_GATES,
    min_entries: int = 3,
) -> tuple[list[str], list[str]]:
    """Rolling-median regression detection against recorded history.

    For every gated kernel, the current run's calibration-normalized
    time is compared against the **median of the last** ``window``
    **recorded entries** — the median absorbs one-off noisy runs that a
    single-baseline comparison would anchor on forever. A kernel fails
    when its current normalized time exceeds ``(1 + tolerance) x
    median``. Kernels with fewer than ``min_entries`` historical
    samples are reported but never fail (a young history can't
    distinguish regression from variance).

    Returns ``(report_lines, failures)`` like :func:`compare_to_baseline`.
    """
    current = history_entry(doc)["kernels"]
    lines: list[str] = []
    failures: list[str] = []
    for name in sorted(current):
        samples = [
            e["kernels"][name]
            for e in history[-window:]
            if isinstance(e.get("kernels"), dict) and name in e["kernels"]
        ]
        gated = name in gates
        cur = current[name]
        if len(samples) < min_entries:
            lines.append(
                f"{name:28s} norm {cur:9.4f} — only {len(samples)} history "
                f"entr{'y' if len(samples) == 1 else 'ies'} (need {min_entries}), skipped"
            )
            continue
        med = sorted(samples)[len(samples) // 2]
        ratio = cur / med if med > 0 else float("inf")
        status = "ok"
        if gated and ratio > 1.0 + tolerance:
            status = "REGRESSION"
            failures.append(name)
        lines.append(
            f"{name:28s} norm {cur:9.4f} vs rolling median {med:9.4f} "
            f"(x{ratio:.2f} over last {len(samples)}) [{'gate' if gated else 'info'}] {status}"
        )
    return lines, failures


def main_bench(
    out: str | None,
    repeats: int,
    check: str | None,
    tolerance: float,
    gates: list[str] | None,
    record: bool = False,
    history: str | None = None,
    history_tolerance: float = 0.5,
    history_window: int = 5,
) -> int:
    """Implementation of ``repro bench`` (returns the exit code)."""
    doc = run_benchmarks(repeats=repeats)
    for name, rec in doc["kernels"].items():
        if "min_s" in rec:
            print(f"{name:28s} min {rec['min_s'] * 1e3:9.2f} ms over {repeats} runs")
        else:
            print(f"{name:28s} skipped ({rec.get('skipped', '?')})")
    if out:
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[written to {out}]")
    exit_code = 0
    if check:
        with open(check) as fh:
            baseline = json.load(fh)
        lines, failures = compare_to_baseline(
            doc, baseline, tolerance=tolerance,
            gates=tuple(gates) if gates else DEFAULT_GATES,
        )
        print(f"\ncheck against {check} (tolerance {tolerance:.0%}):")
        for line in lines:
            print(f"  {line}")
        if failures:
            print(f"FAILED: {', '.join(failures)} regressed beyond {tolerance:.0%}")
            exit_code = 1
        else:
            print("check passed")
    # History pass: consulted whenever a history file is in play
    # (--record and/or an explicit/existing --history), always BEFORE
    # this run is appended so a regressed run cannot vouch for itself.
    history_path = history or DEFAULT_HISTORY
    if record or history is not None:
        entries = load_history(history_path)
        if entries:
            lines, failures = check_history(
                doc, entries, tolerance=history_tolerance,
                window=history_window,
                gates=tuple(gates) if gates else DEFAULT_GATES,
            )
            print(
                f"\nhistory check against {history_path} "
                f"({len(entries)} entries, tolerance {history_tolerance:.0%}, "
                f"window {history_window}):"
            )
            for line in lines:
                print(f"  {line}")
            if failures:
                print(
                    f"FAILED: {', '.join(failures)} regressed beyond "
                    f"{history_tolerance:.0%} of rolling median"
                )
                exit_code = 1
            else:
                print("history check passed")
        else:
            print(f"\nno bench history at {history_path} yet — nothing to check")
        if record:
            append_history(doc, history_path)
            print(f"[recorded to {history_path}]")
    return exit_code
