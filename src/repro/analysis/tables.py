"""Plain-text table rendering for experiment output.

The benchmark harness prints each reproduced table/figure as text (the
environment has no plotting stack); these helpers keep the output
aligned and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

__all__ = ["ascii_table", "format_value"]


def format_value(v: Any, precision: int = 4) -> str:
    """Human-friendly scalar formatting: floats to ``precision``
    significant digits, NaN as '-', everything else via ``str``."""
    if isinstance(v, (float, np.floating)):
        if np.isnan(v):
            return "-"
        return f"{v:.{precision}g}"
    if isinstance(v, (int, np.integer)):
        return str(int(v))
    return str(v)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned plain-text table.

    Examples
    --------
    >>> print(ascii_table(["x", "y"], [[1, 2.0]], title="demo"))
    demo
    x | y
    --+--
    1 | 2
    """
    cells = [[format_value(v, precision) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
