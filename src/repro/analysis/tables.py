"""Plain-text table rendering for experiment output.

The benchmark harness prints each reproduced table/figure as text (the
environment has no plotting stack); these helpers keep the output
aligned and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

__all__ = ["ascii_scatter", "ascii_table", "format_value"]


def format_value(v: Any, precision: int = 4) -> str:
    """Human-friendly scalar formatting: floats to ``precision``
    significant digits, NaN as '-', everything else via ``str``."""
    if isinstance(v, (float, np.floating)):
        if np.isnan(v):
            return "-"
        return f"{v:.{precision}g}"
    if isinstance(v, (int, np.integer)):
        return str(int(v))
    return str(v)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned plain-text table.

    Examples
    --------
    >>> print(ascii_table(["x", "y"], [[1, 2.0]], title="demo"))
    demo
    x | y
    --+--
    1 | 2
    """
    cells = [[format_value(v, precision) for v in row] for row in rows]
    return _render_table(headers, cells, title)


def _render_table(headers: Sequence[str], cells: list[list[str]], title: str | None) -> str:
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    labels: Sequence[str] | None = None,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render an (x, y) point cloud as a plain-text scatter plot.

    Points are marked with letters ``a``, ``b``, ... in input order
    (tying each mark to its row in an accompanying table via
    ``labels``); colliding points show the earliest mark. The plotting
    stack is deliberately text-only — output goes into the same
    diff-friendly reports as :func:`ascii_table`.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size == 0:
        raise ValueError("x and y must be equal-length non-empty 1-D sequences")
    finite = np.isfinite(xs) & np.isfinite(ys)
    marks = [chr(ord("a") + i % 26) for i in range(xs.size)]
    if labels is not None and len(labels) != xs.size:
        raise ValueError(f"got {xs.size} points but {len(labels)} labels")
    fx, fy = xs[finite], ys[finite]
    lines: list[str] = []
    if title:
        lines.append(title)
    if fx.size == 0:
        lines.append("(no finite points)")
        return "\n".join(lines)
    x0, x1 = float(fx.min()), float(fx.max())
    y0, y1 = float(fy.min()), float(fy.max())
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for i in range(xs.size):
        if not finite[i]:
            continue
        col = int(round((xs[i] - x0) / xspan * (width - 1)))
        row = (height - 1) - int(round((ys[i] - y0) / yspan * (height - 1)))
        if grid[row][col] == " ":
            grid[row][col] = marks[i]
    lines.append(f"{ylabel} [{format_value(y0)}, {format_value(y1)}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel} [{format_value(x0)}, {format_value(x1)}]")
    if labels is not None:
        legend = ", ".join(f"{m}={lab}" for m, lab in zip(marks, labels))
        dropped = int((~finite).sum())
        if dropped:
            legend += f"  ({dropped} non-finite point(s) omitted)"
        lines.append(" " + legend)
    return "\n".join(lines)
