"""Nestable spans and point events with a stable JSON schema.

A **span** measures one named unit of work (a solve, a replication, a
whole experiment): wall time via ``time.perf_counter``, CPU time via
``time.process_time``, arbitrary JSON-safe tags, and its position in
the tree of enclosing spans. A **point event** records a fact at an
instant (one replication finished, a solver converged, warmup
discarded too much data).

Spans always *measure* — ``span.wall_s`` is valid whether or not
telemetry is enabled, so library code reports seconds from one clock
discipline everywhere — but they are only *emitted* (to sinks, and
into the tracer's finished-span tree) while the tracer is enabled.

Event schema (version ``1``), one JSON object per line in the JSONL
sink:

``span``
    ``{"v": 1, "type": "span", "name", "ts", "wall_s", "cpu_s",
    "depth", "tags": {...}}`` — ``ts`` is the Unix time the span
    *ended*; ``depth`` 0 marks a root span.
``event``
    ``{"v": 1, "type": "event", "name", "ts", "fields": {...}}``

The tracer is intentionally single-threaded (one stack per process);
process-pool simulation workers run un-traced and ship their counts
back in result metadata, which the parent then records.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

__all__ = ["EVENT_SCHEMA_VERSION", "Span", "Tracer", "json_safe"]

EVENT_SCHEMA_VERSION = 1


def json_safe(value: Any) -> Any:
    """Recursively coerce a tag/field value to JSON-serializable types.

    NumPy scalars and arrays become Python numbers and lists; unknown
    objects fall back to ``str`` (telemetry must never crash the
    instrumented computation over an exotic tag value).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        # Recurse through the list view: structured arrays yield tuples
        # and object/datetime arrays yield non-JSON elements that the
        # fallback below must still catch.
        return json_safe(value.tolist())
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    return str(value)


class Span:
    """One timed unit of work; use as a context manager.

    Attributes are populated on ``__exit__``: ``wall_s`` and ``cpu_s``
    are the elapsed wall/CPU seconds, ``children`` the spans that
    closed while this one was open (only tracked while the tracer is
    enabled).
    """

    __slots__ = ("name", "tags", "depth", "children", "wall_s", "cpu_s", "_tracer", "_t0", "_c0")

    def __init__(self, name: str, tags: dict[str, Any], tracer: "Tracer | None"):
        self.name = name
        self.tags = tags
        self.depth = 0
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._tracer = tracer
        self._t0 = 0.0
        self._c0 = 0.0

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._open(self)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0
        if self._tracer is not None:
            self._tracer._close(self)

    def as_dict(self) -> dict[str, Any]:
        """Nested plain-dict view (manifest span tree)."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "tags": self.tags,
            "children": [c.as_dict() for c in self.children],
        }


class Tracer:
    """Span stack + finished-root collection + sink fan-out.

    ``sinks`` is a list of objects with an ``emit(event_dict)`` method
    (:mod:`repro.obs.sinks`). Disabled tracers hand out spans that
    still measure but record and emit nothing.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.sinks: list[Any] = []
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **tags: Any) -> Span:
        """A new span named ``name``; tags must be JSON-coercible."""
        if not self.enabled:
            return Span(name, {}, None)
        return Span(name, {k: json_safe(v) for k, v in tags.items()}, self)

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point event (no-op while disabled)."""
        if not self.enabled:
            return
        self._emit(
            {
                "v": EVENT_SCHEMA_VERSION,
                "type": "event",
                "name": name,
                "ts": time.time(),
                "fields": {k: json_safe(v) for k, v in fields.items()},
            }
        )

    def reset(self) -> None:
        """Drop collected spans (open spans are abandoned)."""
        self.roots.clear()
        self._stack.clear()

    # -- span lifecycle (called by Span) --------------------------------
    def _open(self, span: Span) -> None:
        span.depth = len(self._stack)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # Tolerate out-of-order exits (generator teardown etc.): pop
        # back to this span if it is on the stack at all.
        if span in self._stack:
            while self._stack:
                top = self._stack.pop()
                if top is span:
                    break
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._emit(
            {
                "v": EVENT_SCHEMA_VERSION,
                "type": "span",
                "name": span.name,
                "ts": time.time(),
                "wall_s": span.wall_s,
                "cpu_s": span.cpu_s,
                "depth": span.depth,
                "tags": span.tags,
            }
        )

    def _emit(self, event: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(event)
