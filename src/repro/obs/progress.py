"""Live progress streaming: a heartbeat JSONL next to the event log.

:class:`~repro.obs.sinks.JsonlSink` writes to a ``.tmp`` sibling and
renames atomically on finalize — exactly right for durable artifacts,
useless for watching a run that is still going. :class:`ProgressSink`
is the complement: it *appends* one compact record per
progress-relevant event directly to ``<out_dir>/progress.jsonl``,
flushing after every line, so a concurrent reader (``repro status
DIR``) always sees a valid prefix of the stream while the run is in
flight. Each record is written with a single ``write`` call of one
newline-terminated line (O_APPEND semantics), so records never
interleave mid-line even if a worker process emits on the same file.

The sink is a **filter** over the tracer's event stream: only the
event names that carry progress information
(:data:`PROGRESS_EVENT_NAMES`) are forwarded — replications finishing,
adaptive stopping rounds, sweep points, controller epochs — plus a
``start`` record when the sink opens and a ``done`` record when the
session finalizes. It observes events that are emitted anyway, so
attaching it cannot change any simulated number (the bit-identity
test in ``tests/test_progress_stream.py`` holds the engine to that).

:func:`read_progress` / :func:`progress_snapshot` are the read side:
parse the stream (tolerating a torn final line mid-write) and distill
it into the "how far along is this run" summary ``repro status``
renders.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

__all__ = [
    "PROGRESS_EVENT_NAMES",
    "PROGRESS_FILENAME",
    "ProgressSink",
    "progress_snapshot",
    "read_progress",
]

PROGRESS_FILENAME = "progress.jsonl"

#: Tracer event names forwarded into the progress stream. Everything
#: else (spans, queue samples, solver diagnostics) stays in
#: ``events.jsonl`` only — the progress file is a heartbeat, not a log.
PROGRESS_EVENT_NAMES = frozenset(
    {
        "sim.replication",
        "sim.adaptive.round",
        "sim.compare.metric",
        "sweep.point",
        "sim.epoch",
        "control.run.done",
        "experiment.done",
        "fleet.unit",
        "fleet.done",
    }
)


class ProgressSink:
    """Append-only heartbeat JSONL with per-line flush.

    Attach to ``Tracer.sinks`` like any other sink; :meth:`emit`
    forwards only :data:`PROGRESS_EVENT_NAMES` point events as
    ``{"kind": <event name>, "ts": ..., **fields}`` records.
    Serialization failures are dropped silently (``n_dropped``) —
    progress reporting must never take the computation down.
    """

    def __init__(self, path: str | Path, event_names: frozenset[str] = PROGRESS_EVENT_NAMES):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._names = frozenset(event_names)
        self._fh = open(self.path, "a")
        self.n_records = 0
        self.n_dropped = 0
        self._write({"kind": "start", "ts": time.time(), "pid": os.getpid()})

    def emit(self, event: dict[str, Any]) -> None:
        if event.get("type") != "event" or event.get("name") not in self._names:
            return
        self._write({"kind": event["name"], "ts": event.get("ts"), **event.get("fields", {})})

    def _write(self, record: dict[str, Any]) -> None:
        if self._fh.closed:
            return
        try:
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            self.n_dropped += 1
            return
        # One write call per newline-terminated line + immediate flush:
        # the file on disk is always a sequence of whole records.
        self._fh.write(line + "\n")
        self._fh.flush()
        self.n_records += 1

    def close(self) -> None:
        """Write the terminal ``done`` record and close the stream."""
        if self._fh.closed:
            return
        self._write({"kind": "done", "ts": time.time()})
        self._fh.close()


def read_progress(path: str | Path) -> list[dict[str, Any]]:
    """Parse a progress stream, skipping a torn final line.

    A reader can race the writer mid-``write``; every complete line is
    valid JSON, so only an unparsable *last* line may be in flight and
    is skipped. An unparsable line elsewhere raises — that is
    corruption, not a race.
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    records: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break
            raise
    return records


def progress_snapshot(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Distill a progress stream into the live-status summary.

    Returns a plain dict with whatever the stream supports so far:
    replications done/total (and cache hits), the latest adaptive
    round's relative CIs, sweep points done per label, controller
    epochs fired, whether the session has finalized, and the age of
    the newest record.
    """
    out: dict[str, Any] = {
        "started": any(r.get("kind") == "start" for r in records),
        "finished": any(r.get("kind") == "done" for r in records),
        "last_ts": max((r["ts"] for r in records if r.get("ts")), default=None),
        "n_records": len(records),
    }
    reps = [r for r in records if r.get("kind") == "sim.replication"]
    if reps:
        last = reps[-1]
        out["replications"] = {
            "n_done": int(last.get("n_done", len(reps))),
            "n_total": last.get("n_total"),
            "cache_hits": sum(1 for r in reps if r.get("cached")),
            "last_events_per_sec": last.get("events_per_sec"),
        }
    rounds = [r for r in records if r.get("kind") == "sim.adaptive.round"]
    if rounds:
        last = rounds[-1]
        out["adaptive"] = {
            "n_rounds": len(rounds),
            "n_available": last.get("n_available"),
            "stop_at": last.get("stop_at"),
            "rel_ci": {
                k.removeprefix("rel_ci."): v
                for k, v in last.items()
                if k.startswith("rel_ci.")
            },
        }
    sweeps = [r for r in records if r.get("kind") == "sweep.point"]
    if sweeps:
        per_label: dict[str, dict[str, Any]] = {}
        for r in sweeps:
            rec = per_label.setdefault(
                str(r.get("label", "")), {"n_done": 0, "n_total": r.get("n_total"), "n_failed": 0}
            )
            rec["n_done"] += 1
            rec["n_total"] = r.get("n_total", rec["n_total"])
            rec["n_failed"] += 1 if r.get("failed") else 0
        out["sweeps"] = per_label
    epochs = [r for r in records if r.get("kind") == "sim.epoch"]
    if epochs:
        out["epochs"] = {"n_fired": len(epochs), "last_t": epochs[-1].get("t")}
    units = [r for r in records if r.get("kind") in ("fleet.unit", "fleet.done")]
    if units:
        last = units[-1]
        out["fleet"] = {
            "n_done": int(last.get("n_done", 0)),
            "n_failed": int(last.get("n_failed", 0)),
            "n_total": last.get("n_total"),
            "units_per_sec": last.get("units_per_sec"),
            "finished": any(r.get("kind") == "fleet.done" for r in units),
        }
    return out
