"""repro.obs — unified telemetry: metrics, tracing, run manifests.

One process-wide :class:`Telemetry` instance (``repro.obs.TELEMETRY``)
bundles the three layers:

* :mod:`repro.obs.metrics` — counters / gauges / histograms / timers
  with a near-zero-cost disabled path;
* :mod:`repro.obs.trace` — nestable spans (wall + CPU time, tags) and
  point events with a stable JSONL schema;
* :mod:`repro.obs.manifest` — a run manifest (seed, canonical config
  fingerprint, version, host, span tree, metrics snapshot) written
  next to the event log.

Telemetry is **off by default**: every instrumented call site then
costs a null-object method call or a local clock read, nothing is
allocated per event, and nothing is written. The CLI's
``--telemetry PATH`` flag (or :func:`telemetry_session`) turns it on
for the duration of one run and finalizes the artifacts atomically:

    with telemetry_session("out/", command=argv):
        ...instrumented work...
    # out/events.jsonl + out/manifest.json now exist

``repro telemetry summarize out/`` renders the result.

Usage from library code::

    from repro import obs

    with obs.span("optimize.p1", n_starts=3) as sp:
        ...                       # sp.wall_s is valid afterwards
    obs.counter("sim.events").add(n_events)
    obs.event("replication", index=i, events_per_sec=rate)
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.manifest import build_manifest, config_fingerprint, write_manifest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import (
    PROGRESS_FILENAME,
    ProgressSink,
    progress_snapshot,
    read_progress,
)
from repro.obs.sinks import InMemorySink, JsonlSink
from repro.obs.trace import EVENT_SCHEMA_VERSION, Span, Tracer

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENTS_FILENAME",
    "MANIFEST_FILENAME",
    "PROGRESS_FILENAME",
    "STORE_FILENAME",
    "TELEMETRY",
    "Telemetry",
    "telemetry_session",
    "span",
    "event",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "is_enabled",
    "build_manifest",
    "config_fingerprint",
    "write_manifest",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "ProgressSink",
    "progress_snapshot",
    "read_progress",
    "RunStore",
    "render_dashboard",
]

EVENTS_FILENAME = "events.jsonl"
MANIFEST_FILENAME = "manifest.json"
STORE_FILENAME = "runs.sqlite"


def __getattr__(name: str):
    # Lazy re-exports: the run store (sqlite3) and the dashboard
    # renderer are read-side tools; importing repro.obs for the
    # write-side instrumentation should not pay for them.
    if name == "RunStore":
        from repro.obs.store import RunStore

        return RunStore
    if name == "render_dashboard":
        from repro.obs.dashboard import render_dashboard

        return render_dashboard
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Telemetry:
    """The process-wide telemetry switchboard.

    Holds the metric registry, the tracer, the optional JSONL sink and
    the run context (seed / config / command) that ends up in the
    manifest. All state is reset by :meth:`disable`.
    """

    def __init__(self) -> None:
        self.metrics = MetricsRegistry(enabled=False)
        self.tracer = Tracer(enabled=False)
        self.out_dir: Path | None = None
        self.sample_queues = False
        self.queue_sample_interval = 1.0
        self.run_context: dict[str, Any] = {}
        self._jsonl: JsonlSink | None = None
        self._progress: ProgressSink | None = None

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def enable(
        self,
        out_dir: str | Path | None = None,
        *,
        sample_queues: bool = False,
        queue_sample_interval: float = 1.0,
    ) -> None:
        """Turn telemetry on, optionally streaming events to
        ``<out_dir>/events.jsonl`` (finalized atomically later).

        ``sample_queues`` additionally samples per-tier population and
        busy-server counts inside the simulator every
        ``queue_sample_interval`` simulated time units — useful detail,
        measurable cost, hence opt-in even within an enabled session.
        """
        self.disable()
        self.metrics.enabled = True
        self.tracer.enabled = True
        self.sample_queues = bool(sample_queues)
        self.queue_sample_interval = float(queue_sample_interval)
        if out_dir is not None:
            self.out_dir = Path(out_dir)
            self._jsonl = JsonlSink(self.out_dir / EVENTS_FILENAME)
            self.tracer.sinks.append(self._jsonl)
            # Live heartbeat stream for `repro status` — append-only,
            # flushed per line, readable while the run is in flight.
            self._progress = ProgressSink(self.out_dir / PROGRESS_FILENAME)
            self.tracer.sinks.append(self._progress)

    def annotate(self, **context: Any) -> None:
        """Stash run context (``seed=...``, ``config=...``, ...) for the
        manifest; a no-op while disabled."""
        if self.enabled:
            self.run_context.update(context)

    def finalize(self, command: list[str] | str | None = None) -> Path | None:
        """Write the manifest, atomically finalize the event log and
        return the manifest path (``None`` when no ``out_dir``)."""
        manifest = build_manifest(
            command=command if command is not None else self.run_context.get("command"),
            seed=self.run_context.get("seed"),
            config=self.run_context.get("config"),
            metrics_snapshot=self.metrics.snapshot(),
            spans=[s.as_dict() for s in self.tracer.roots],
            events_info={
                "emitted": self._jsonl.n_events,
                "dropped": self._jsonl.n_dropped,
            }
            if self._jsonl is not None
            else None,
            extra={
                k: v
                for k, v in self.run_context.items()
                if k not in ("seed", "config", "command")
            }
            or None,
        )
        path: Path | None = None
        if self._jsonl is not None:
            self._jsonl.finalize()
        if self._progress is not None:
            self._progress.close()
        if self.out_dir is not None:
            path = write_manifest(self.out_dir / MANIFEST_FILENAME, manifest)
        return path

    def disable(self) -> None:
        """Turn telemetry off and drop all collected state."""
        if self._jsonl is not None:
            self._jsonl.finalize()
            if self._jsonl in self.tracer.sinks:
                self.tracer.sinks.remove(self._jsonl)
            self._jsonl = None
        if self._progress is not None:
            self._progress.close()
            if self._progress in self.tracer.sinks:
                self.tracer.sinks.remove(self._progress)
            self._progress = None
        self.metrics.enabled = False
        self.metrics.reset()
        self.tracer.enabled = False
        self.tracer.sinks.clear()
        self.tracer.reset()
        self.out_dir = None
        self.sample_queues = False
        self.run_context = {}


TELEMETRY = Telemetry()


@contextmanager
def telemetry_session(
    out_dir: str | Path | None,
    *,
    command: list[str] | str | None = None,
    sample_queues: bool = False,
    queue_sample_interval: float = 1.0,
) -> Iterator[Telemetry]:
    """Enable global telemetry for one run and finalize on exit.

    Finalization happens even when the body raises, so a failed run
    still leaves a readable manifest + event log behind for diagnosis.
    """
    TELEMETRY.enable(
        out_dir,
        sample_queues=sample_queues,
        queue_sample_interval=queue_sample_interval,
    )
    if command is not None:
        TELEMETRY.run_context["command"] = command
    try:
        yield TELEMETRY
        TELEMETRY.finalize()
    except BaseException:
        TELEMETRY.finalize()
        raise
    finally:
        TELEMETRY.disable()


# -- module-level conveniences (the instrumented sites use these) -------
def span(name: str, **tags: Any) -> Span:
    """A span on the global tracer (measures even while disabled)."""
    return TELEMETRY.tracer.span(name, **tags)


def event(name: str, **fields: Any) -> None:
    """A point event on the global tracer (no-op while disabled)."""
    TELEMETRY.tracer.event(name, **fields)


def counter(name: str) -> Counter:
    """The global counter ``name`` (null object while disabled)."""
    return TELEMETRY.metrics.counter(name)


def gauge(name: str) -> Gauge:
    """The global gauge ``name`` (null object while disabled)."""
    return TELEMETRY.metrics.gauge(name)


def histogram(name: str) -> Histogram:
    """The global histogram ``name`` (null object while disabled)."""
    return TELEMETRY.metrics.histogram(name)


def timer(name: str) -> Histogram:
    """The global timer ``name`` — a histogram over wall seconds."""
    return TELEMETRY.metrics.timer(name)


def is_enabled() -> bool:
    """Whether global telemetry is currently on."""
    return TELEMETRY.enabled
