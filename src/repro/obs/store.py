"""Cross-run telemetry store: SQLite over ``--telemetry`` artifacts.

Every telemetry run is a self-describing island — ``manifest.json`` +
``events.jsonl`` in one directory. :class:`RunStore` aggregates any
number of them into one queryable SQLite database with normalized
tables:

``runs``
    One row per ingested directory: creation time, package version,
    command, seed, ``config_fingerprint`` (the same canonical SHA-256
    the replication cache uses, so *same fingerprint + same seed*
    means *comparable numbers*), event counts (including dropped
    events), total root-span wall time, and the full manifest JSON.
``spans`` / ``events``
    The flattened event log: every closed span and point event.
``metrics``
    The manifest's counter/gauge/histogram snapshot, one row per
    instrument, with a scalar ``value`` column for cross-run series.
``solver_results`` / ``adaptive_rounds`` / ``epochs`` / ``sweep_points``
    Typed projections of the semantically rich events (``solver.result``,
    ``sim.adaptive.round``, ``sim.epoch``, ``sweep.point``) so the
    dashboard and ad-hoc SQL never re-parse JSON lines.

Ingest is **idempotent per directory**: re-ingesting a run directory
replaces its previous rows (keyed by the resolved path), so a cron'd
``repro telemetry ingest out/*`` converges instead of duplicating.

The query API (:meth:`~RunStore.runs`, :meth:`~RunStore.spans`,
:meth:`~RunStore.metric_series`, :meth:`~RunStore.compare`, ...) powers
``repro dashboard`` and ``repro telemetry ingest``; the database file
is plain SQLite, so anything else (pandas, datasette, sqlite3 CLI) can
read it too.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any

__all__ = ["RunStore", "STORE_SCHEMA_VERSION"]

STORE_SCHEMA_VERSION = 1

_SCHEMA = """
PRAGMA foreign_keys = ON;
CREATE TABLE IF NOT EXISTS store_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY,
    run_dir TEXT UNIQUE NOT NULL,
    ingested_unix REAL NOT NULL,
    created_unix REAL,
    version TEXT,
    command TEXT,
    seed INTEGER,
    config_fingerprint TEXT,
    hostname TEXT,
    n_events INTEGER NOT NULL DEFAULT 0,
    n_dropped INTEGER NOT NULL DEFAULT 0,
    wall_s REAL,
    sim_backend TEXT,
    sim_backend_fallback TEXT,
    manifest TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_fingerprint ON runs (config_fingerprint, seed);
CREATE TABLE IF NOT EXISTS spans (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name TEXT NOT NULL,
    ts REAL,
    wall_s REAL,
    cpu_s REAL,
    depth INTEGER,
    tags TEXT
);
CREATE INDEX IF NOT EXISTS idx_spans_run ON spans (run_id, name);
CREATE TABLE IF NOT EXISTS events (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name TEXT NOT NULL,
    ts REAL,
    fields TEXT
);
CREATE INDEX IF NOT EXISTS idx_events_run ON events (run_id, name);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name TEXT NOT NULL,
    kind TEXT,
    value REAL,
    data TEXT
);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name);
CREATE TABLE IF NOT EXISTS solver_results (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    label TEXT,
    method TEXT,
    success INTEGER,
    nit INTEGER,
    nfev INTEGER,
    n_evaluations INTEGER,
    status INTEGER,
    wall_s REAL
);
CREATE TABLE IF NOT EXISTS adaptive_rounds (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    round INTEGER,
    n_available INTEGER,
    stop_at INTEGER,
    rel_ci TEXT
);
CREATE TABLE IF NOT EXISTS epochs (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    epoch INTEGER,
    t REAL,
    speeds TEXT,
    queues TEXT,
    dynamic_energy REAL
);
CREATE TABLE IF NOT EXISTS sweep_points (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    label TEXT,
    idx INTEGER,
    value REAL,
    fun REAL,
    warm INTEGER,
    failed INTEGER,
    n_evaluations INTEGER,
    wall_s REAL
);
CREATE TABLE IF NOT EXISTS fleet_sweeps (
    id INTEGER PRIMARY KEY,
    store_dir TEXT UNIQUE NOT NULL,
    ingested_unix REAL NOT NULL,
    seed INTEGER,
    fmt TEXT,
    backend TEXT,
    n_rows INTEGER,
    n_scenarios INTEGER,
    n_replications INTEGER,
    n_failed INTEGER,
    wall_s REAL,
    meta TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS fleet_scenarios (
    sweep_id INTEGER NOT NULL REFERENCES fleet_sweeps (id) ON DELETE CASCADE,
    scenario INTEGER,
    label TEXT,
    params TEXT,
    n INTEGER,
    mean_delay REAL,
    mean_delay_std REAL,
    average_power REAL,
    average_power_std REAL,
    energy_per_request REAL
);
CREATE INDEX IF NOT EXISTS idx_fleet_scenarios ON fleet_scenarios (sweep_id, scenario);
"""


def _rows(cursor: sqlite3.Cursor) -> list[dict[str, Any]]:
    cols = [d[0] for d in cursor.description]
    return [dict(zip(cols, row)) for row in cursor.fetchall()]


def _span_walls(events: list[dict[str, Any]], manifest: dict[str, Any]) -> float | None:
    """Total root-span wall seconds — the run's instrumented duration.

    Prefers depth-0 spans from the event log; a run whose log is
    missing falls back to the manifest's span tree.
    """
    roots = [
        e.get("wall_s", 0.0)
        for e in events
        if e.get("type") == "span" and e.get("depth", 0) == 0
    ]
    if roots:
        return float(sum(roots))
    tree = manifest.get("spans") or []
    if tree:
        return float(sum(s.get("wall_s", 0.0) for s in tree))
    return None


class RunStore:
    """SQLite-backed store over ingested telemetry runs.

    Usable as a context manager; :meth:`close` commits and closes the
    connection. All query methods return plain dicts/lists, JSON
    columns already parsed.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._conn.execute(
            "INSERT OR IGNORE INTO store_meta (key, value) VALUES ('schema_version', ?)",
            (str(STORE_SCHEMA_VERSION),),
        )
        self._conn.commit()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()

    def _migrate(self) -> None:
        """Bring a store created by an older schema up to date.

        ``CREATE TABLE IF NOT EXISTS`` leaves pre-existing tables
        untouched, so columns added after a store was first created
        must be grafted on here; SQLite's ``ADD COLUMN`` defaults the
        backfill to NULL, which every reader treats as "unknown".
        """
        have = {row[1] for row in self._conn.execute("PRAGMA table_info(runs)")}
        for column in ("sim_backend", "sim_backend_fallback"):
            if column not in have:
                self._conn.execute(f"ALTER TABLE runs ADD COLUMN {column} TEXT")
        self._conn.commit()

    # -- ingest ----------------------------------------------------------
    def ingest(self, run_dir: str | Path) -> int:
        """Ingest one telemetry directory; returns its ``runs.id``.

        Requires ``manifest.json``; ``events.jsonl`` is optional (a
        crashed run may only have the manifest). Re-ingesting the same
        directory replaces the previous rows.
        """
        root = Path(run_dir).resolve()
        manifest_path = root / "manifest.json"
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no manifest.json under {root} — was the run started with --telemetry?"
            )
        manifest = json.loads(manifest_path.read_text())
        events: list[dict[str, Any]] = []
        events_path = root / "events.jsonl"
        if events_path.exists():
            with open(events_path) as fh:
                events = [json.loads(line) for line in fh if line.strip()]

        host = manifest.get("host") or {}
        events_info = manifest.get("events") or {}
        command = manifest.get("command")
        extra = manifest.get("extra") or {}
        cur = self._conn.cursor()
        cur.execute("BEGIN")
        try:
            # Idempotency: one run per resolved directory; children go
            # with the old row via ON DELETE CASCADE.
            cur.execute("DELETE FROM runs WHERE run_dir = ?", (str(root),))
            cur.execute(
                "INSERT INTO runs (run_dir, ingested_unix, created_unix, version, command,"
                " seed, config_fingerprint, hostname, n_events, n_dropped, wall_s,"
                " sim_backend, sim_backend_fallback, manifest)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    str(root),
                    time.time(),
                    manifest.get("created_unix"),
                    manifest.get("version"),
                    json.dumps(command) if command is not None else None,
                    manifest.get("seed"),
                    manifest.get("config_fingerprint"),
                    host.get("hostname"),
                    int(events_info.get("emitted", len(events))),
                    int(events_info.get("dropped", 0)),
                    _span_walls(events, manifest),
                    extra.get("sim_backend"),
                    extra.get("sim_backend_fallback"),
                    json.dumps(manifest, sort_keys=True),
                ),
            )
            run_id = int(cur.lastrowid)
            self._insert_children(cur, run_id, manifest, events)
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return run_id

    def _insert_children(
        self,
        cur: sqlite3.Cursor,
        run_id: int,
        manifest: dict[str, Any],
        events: list[dict[str, Any]],
    ) -> None:
        spans = [e for e in events if e.get("type") == "span"]
        points = [e for e in events if e.get("type") == "event"]
        cur.executemany(
            "INSERT INTO spans (run_id, name, ts, wall_s, cpu_s, depth, tags)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    run_id,
                    e.get("name"),
                    e.get("ts"),
                    e.get("wall_s"),
                    e.get("cpu_s"),
                    e.get("depth"),
                    json.dumps(e.get("tags") or {}, sort_keys=True),
                )
                for e in spans
            ],
        )
        cur.executemany(
            "INSERT INTO events (run_id, name, ts, fields) VALUES (?, ?, ?, ?)",
            [
                (
                    run_id,
                    e.get("name"),
                    e.get("ts"),
                    json.dumps(e.get("fields") or {}, sort_keys=True),
                )
                for e in points
            ],
        )
        metric_rows = []
        for name, rec in (manifest.get("metrics") or {}).items():
            value = rec.get("value")
            if value is None and rec.get("kind") == "histogram":
                value = rec.get("mean")
            try:
                value = None if value is None else float(value)
            except (TypeError, ValueError):
                value = None
            metric_rows.append(
                (run_id, name, rec.get("kind"), value, json.dumps(rec, sort_keys=True))
            )
        cur.executemany(
            "INSERT INTO metrics (run_id, name, kind, value, data) VALUES (?, ?, ?, ?, ?)",
            metric_rows,
        )

        def fields_of(name: str) -> list[dict[str, Any]]:
            return [e.get("fields") or {} for e in points if e.get("name") == name]

        cur.executemany(
            "INSERT INTO solver_results (run_id, label, method, success, nit, nfev,"
            " n_evaluations, status, wall_s) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    run_id,
                    f.get("label"),
                    f.get("method"),
                    None if f.get("success") is None else int(bool(f.get("success"))),
                    f.get("nit"),
                    f.get("nfev"),
                    f.get("n_evaluations"),
                    f.get("status"),
                    f.get("wall_s"),
                )
                for f in fields_of("solver.result")
            ],
        )
        cur.executemany(
            "INSERT INTO adaptive_rounds (run_id, round, n_available, stop_at, rel_ci)"
            " VALUES (?, ?, ?, ?, ?)",
            [
                (
                    run_id,
                    f.get("round"),
                    f.get("n_available"),
                    f.get("stop_at"),
                    json.dumps(
                        {
                            k.removeprefix("rel_ci."): v
                            for k, v in f.items()
                            if k.startswith("rel_ci.")
                        },
                        sort_keys=True,
                    ),
                )
                for f in fields_of("sim.adaptive.round")
            ],
        )
        cur.executemany(
            "INSERT INTO epochs (run_id, epoch, t, speeds, queues, dynamic_energy)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            [
                (
                    run_id,
                    f.get("epoch"),
                    f.get("t"),
                    json.dumps(f.get("speeds")),
                    json.dumps(f.get("queues")),
                    f.get("dynamic_energy"),
                )
                for f in fields_of("sim.epoch")
            ],
        )
        cur.executemany(
            "INSERT INTO sweep_points (run_id, label, idx, value, fun, warm, failed,"
            " n_evaluations, wall_s) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    run_id,
                    f.get("label"),
                    f.get("index"),
                    f.get("value_num"),
                    f.get("fun"),
                    None if f.get("warm") is None else int(bool(f.get("warm"))),
                    None if f.get("failed") is None else int(bool(f.get("failed"))),
                    f.get("n_evaluations"),
                    f.get("wall_s"),
                )
                for f in fields_of("sweep.point")
            ],
        )

    def ingest_fleet(self, store_dir: str | Path) -> int:
        """Ingest a columnar fleet store; returns its ``fleet_sweeps.id``.

        Folds the store's per-unit rows into per-scenario aggregates
        (mean/std of the headline metrics) — the summary resolution
        the dashboard and cross-run SQL need, without copying every
        unit row into SQLite (the columnar store stays the source of
        truth for unit-level queries). Idempotent per resolved
        directory, like :meth:`ingest`.
        """
        from repro.simulation.results_store import FleetStore

        root = Path(store_dir).resolve()
        fstore = FleetStore.open(root)
        table = fstore.scenario_table(
            metrics=["mean_delay", "average_power", "energy_per_request"]
        )
        meta = fstore.meta
        cur = self._conn.cursor()
        cur.execute("BEGIN")
        try:
            cur.execute("DELETE FROM fleet_sweeps WHERE store_dir = ?", (str(root),))
            cur.execute(
                "INSERT INTO fleet_sweeps (store_dir, ingested_unix, seed, fmt, backend,"
                " n_rows, n_scenarios, n_replications, n_failed, wall_s, meta)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    str(root),
                    time.time(),
                    meta.get("seed"),
                    fstore.fmt,
                    meta.get("backend"),
                    fstore.n_rows,
                    len(meta.get("scenarios", [])) or len(table),
                    meta.get("n_replications"),
                    meta.get("n_failed"),
                    meta.get("wall_time_s"),
                    json.dumps(meta, sort_keys=True),
                ),
            )
            sweep_id = int(cur.lastrowid)
            cur.executemany(
                "INSERT INTO fleet_scenarios (sweep_id, scenario, label, params, n,"
                " mean_delay, mean_delay_std, average_power, average_power_std,"
                " energy_per_request) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        sweep_id,
                        rec["scenario"],
                        rec["label"],
                        json.dumps(rec["params"], sort_keys=True),
                        rec["n"],
                        rec["mean_delay"]["mean"],
                        rec["mean_delay"]["std"],
                        rec["average_power"]["mean"],
                        rec["average_power"]["std"],
                        rec["energy_per_request"]["mean"],
                    )
                    for rec in table
                ],
            )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return sweep_id

    # -- queries ---------------------------------------------------------
    def fleet_sweeps(self) -> list[dict[str, Any]]:
        """Every ingested fleet sweep, oldest first, with parsed meta."""
        out = _rows(
            self._conn.execute(
                "SELECT id, store_dir, ingested_unix, seed, fmt, backend, n_rows,"
                " n_scenarios, n_replications, n_failed, wall_s, meta FROM fleet_sweeps"
                " ORDER BY ingested_unix, id"
            )
        )
        for r in out:
            r["meta"] = json.loads(r["meta"]) if r["meta"] else {}
        return out

    def fleet_scenarios(self, sweep_id: int) -> list[dict[str, Any]]:
        """Per-scenario aggregates of one sweep, ordered by scenario id."""
        out = _rows(
            self._conn.execute(
                "SELECT scenario, label, params, n, mean_delay, mean_delay_std,"
                " average_power, average_power_std, energy_per_request"
                " FROM fleet_scenarios WHERE sweep_id = ? ORDER BY scenario",
                (sweep_id,),
            )
        )
        for r in out:
            r["params"] = json.loads(r["params"]) if r["params"] else {}
        return out

    def runs(self) -> list[dict[str, Any]]:
        """Every ingested run, oldest first, with parsed ``command``."""
        out = _rows(
            self._conn.execute(
                "SELECT id, run_dir, ingested_unix, created_unix, version, command, seed,"
                " config_fingerprint, hostname, n_events, n_dropped, wall_s,"
                " sim_backend, sim_backend_fallback FROM runs"
                " ORDER BY created_unix, id"
            )
        )
        for r in out:
            r["command"] = json.loads(r["command"]) if r["command"] else None
        return out

    def run(self, run_id: int) -> dict[str, Any]:
        """One run row including the full parsed manifest."""
        rows = _rows(self._conn.execute("SELECT * FROM runs WHERE id = ?", (run_id,)))
        if not rows:
            raise KeyError(f"no run with id {run_id}")
        r = rows[0]
        r["command"] = json.loads(r["command"]) if r["command"] else None
        r["manifest"] = json.loads(r["manifest"])
        return r

    def spans(self, run_id: int, name: str | None = None) -> list[dict[str, Any]]:
        """Closed spans of one run (optionally one span name)."""
        q = "SELECT name, ts, wall_s, cpu_s, depth, tags FROM spans WHERE run_id = ?"
        args: tuple[Any, ...] = (run_id,)
        if name is not None:
            q += " AND name = ?"
            args += (name,)
        out = _rows(self._conn.execute(q + " ORDER BY ts", args))
        for r in out:
            r["tags"] = json.loads(r["tags"]) if r["tags"] else {}
        return out

    def events(self, run_id: int, name: str | None = None) -> list[dict[str, Any]]:
        """Point events of one run (optionally one event name)."""
        q = "SELECT name, ts, fields FROM events WHERE run_id = ?"
        args: tuple[Any, ...] = (run_id,)
        if name is not None:
            q += " AND name = ?"
            args += (name,)
        out = _rows(self._conn.execute(q + " ORDER BY ts", args))
        for r in out:
            r["fields"] = json.loads(r["fields"]) if r["fields"] else {}
        return out

    def metrics(self, run_id: int) -> dict[str, dict[str, Any]]:
        """The metric snapshot of one run, name → parsed record."""
        out = {}
        for r in _rows(
            self._conn.execute(
                "SELECT name, kind, value, data FROM metrics WHERE run_id = ?", (run_id,)
            )
        ):
            rec = json.loads(r["data"]) if r["data"] else {}
            rec["value"] = r["value"] if "value" not in rec else rec["value"]
            out[r["name"]] = rec
        return out

    def metric_series(self, name: str) -> list[dict[str, Any]]:
        """One metric across every run that recorded it, oldest first —
        the trajectory view (``sim.events`` over time, cache hit
        counts per run, ...)."""
        return _rows(
            self._conn.execute(
                "SELECT m.run_id, r.created_unix, r.config_fingerprint, r.seed, m.value"
                " FROM metrics m JOIN runs r ON r.id = m.run_id"
                " WHERE m.name = ? ORDER BY r.created_unix, m.run_id",
                (name,),
            )
        )

    def adaptive_rounds(self, run_id: int) -> list[dict[str, Any]]:
        """The adaptive engine's stopping-round trace of one run."""
        out = _rows(
            self._conn.execute(
                "SELECT round, n_available, stop_at, rel_ci FROM adaptive_rounds"
                " WHERE run_id = ? ORDER BY round",
                (run_id,),
            )
        )
        for r in out:
            r["rel_ci"] = json.loads(r["rel_ci"]) if r["rel_ci"] else {}
        return out

    def epoch_trace(self, run_id: int) -> list[dict[str, Any]]:
        """The controller's per-epoch trace of one run (A7 and friends)."""
        out = _rows(
            self._conn.execute(
                "SELECT epoch, t, speeds, queues, dynamic_energy FROM epochs"
                " WHERE run_id = ? ORDER BY epoch",
                (run_id,),
            )
        )
        for r in out:
            r["speeds"] = json.loads(r["speeds"]) if r["speeds"] else None
            r["queues"] = json.loads(r["queues"]) if r["queues"] else None
        return out

    def solver_results(self, run_id: int) -> list[dict[str, Any]]:
        """Optimizer solves recorded in one run."""
        return _rows(
            self._conn.execute(
                "SELECT label, method, success, nit, nfev, n_evaluations, status, wall_s"
                " FROM solver_results WHERE run_id = ?",
                (run_id,),
            )
        )

    def sweep_points(self, run_id: int | None = None) -> list[dict[str, Any]]:
        """Continuation-sweep points, one run or all runs (frontier
        overlays group these by label across runs)."""
        q = (
            "SELECT run_id, label, idx, value, fun, warm, failed, n_evaluations, wall_s"
            " FROM sweep_points"
        )
        args: tuple[Any, ...] = ()
        if run_id is not None:
            q += " WHERE run_id = ?"
            args = (run_id,)
        return _rows(self._conn.execute(q + " ORDER BY run_id, label, idx", args))

    def compare(self, run_a: int, run_b: int) -> dict[str, Any]:
        """Side-by-side comparison of two runs.

        Most meaningful when both share a ``config_fingerprint`` (same
        configuration, possibly different seeds/versions/hosts); the
        result says whether they do, compares wall time and event
        counts, and diffs every numeric metric present in both.
        """
        a, b = self.run(run_a), self.run(run_b)
        ma, mb = self.metrics(run_a), self.metrics(run_b)
        metrics: dict[str, dict[str, Any]] = {}
        for name in sorted(set(ma) & set(mb)):
            va, vb = ma[name].get("value"), mb[name].get("value")
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                metrics[name] = {
                    "a": va,
                    "b": vb,
                    "ratio": (vb / va) if va else None,
                }
        return {
            "a": {k: a[k] for k in ("id", "run_dir", "seed", "wall_s", "n_events")},
            "b": {k: b[k] for k in ("id", "run_dir", "seed", "wall_s", "n_events")},
            "same_fingerprint": bool(
                a["config_fingerprint"]
                and a["config_fingerprint"] == b["config_fingerprint"]
            ),
            "same_seed": a["seed"] == b["seed"],
            "metrics": metrics,
        }
