"""Run manifests: the who/what/where record next to a JSONL event log.

A manifest makes a telemetry artifact self-describing: which package
version produced it, on what host, from which command, over which
configuration (identified by the same canonical SHA-256 fingerprint
the simulation cache uses, so "same fingerprint" means "same numbers"),
plus a final metrics snapshot and the tree of top-level spans.

Determinism contract: for a fixed seed and configuration the fields
``manifest_version``, ``package``, ``version``, ``command``, ``seed``
and ``config_fingerprint`` are identical run-to-run; timestamps, host
info, spans and metrics obviously are not.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import time
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.obs.trace import json_safe

__all__ = ["MANIFEST_VERSION", "build_manifest", "config_fingerprint", "write_manifest"]

MANIFEST_VERSION = 1


def config_fingerprint(config: Any) -> str | None:
    """Canonical SHA-256 fingerprint of a configuration object.

    Reuses :func:`repro.simulation.cache._jsonable` — the cache's
    stable reduction of model objects to primitives — so a cluster +
    workload fingerprints identically here and in the replication
    cache. Returns ``None`` for objects that cannot be canonicalized
    (e.g. closure-based arrival-rate functions).
    """
    from repro.simulation.cache import CacheUnsupportedError, _jsonable

    if config is None:
        return None
    try:
        payload = json.dumps(_jsonable(config), sort_keys=True, separators=(",", ":"))
    except CacheUnsupportedError:
        return None
    return hashlib.sha256(payload.encode()).hexdigest()


def host_info() -> dict[str, Any]:
    """Where the run happened (reproducibility context, not identity)."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


def build_manifest(
    *,
    command: list[str] | str | None = None,
    seed: int | None = None,
    config: Any = None,
    metrics_snapshot: dict[str, Any] | None = None,
    spans: list[dict[str, Any]] | None = None,
    events_info: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest dict (pure data; writing is separate).

    Parameters
    ----------
    command:
        The CLI argv (or a label) that produced the run.
    seed:
        Master seed, when the run had one.
    config:
        The configuration object to fingerprint (any combination of
        model objects, e.g. ``{"cluster": c, "workload": w}``).
    metrics_snapshot:
        :meth:`repro.obs.metrics.MetricsRegistry.snapshot` output.
    spans:
        Top-level span tree (``Span.as_dict()`` per root).
    events_info:
        Event-log accounting from the JSONL sink: ``emitted`` (lines
        written) and ``dropped`` (events that failed serialization —
        nonzero means the log is incomplete and readers should warn).
    extra:
        Caller extras merged under ``"extra"``.
    """
    return {
        "manifest_version": MANIFEST_VERSION,
        "package": "repro",
        "version": __version__,
        "created_unix": time.time(),
        "command": json_safe(command),
        "seed": seed,
        "config_fingerprint": config_fingerprint(config),
        "host": host_info(),
        "metrics": metrics_snapshot or {},
        "spans": spans or [],
        "events": events_info or {},
        "extra": json_safe(extra) if extra else {},
    }


def write_manifest(path: str | Path, manifest: dict[str, Any]) -> Path:
    """Atomically write ``manifest`` as pretty JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path
