"""Static operations dashboard over a :class:`~repro.obs.store.RunStore`.

``repro dashboard`` renders one **self-contained** HTML file — inline
CSS, hand-rolled SVG, zero scripts, zero network — so the artifact can
be attached to CI, mailed around, or opened from a USB stick years
later and still work. Sections:

* run table (when, version, seed, fingerprint, events, dropped, wall);
* per-run span timing breakdown (where the wall time went);
* adaptive replication traces (worst rel-CI per round, against the
  target's stopping rule);
* controller epoch traces (per-tier speeds, total queue, cumulative
  dynamic energy over the horizon);
* frontier overlays (``sweep.point`` series grouped by label across
  runs — the cross-run drift view);
* optional benchmark history (calibration-normalized kernel times over
  recorded bench runs, the same series the regression detector reads).

Charts follow one scheme: categorical palette ``blue / orange / aqua``
(colorblind-validated, assigned in fixed order, at most three series
per chart — further series fold into the table below each chart),
single y-axis, light surface, direct data tables next to every chart
so nothing is readable by color alone.
"""

from __future__ import annotations

import html
import json
import math
import time
from pathlib import Path
from typing import Any, Sequence

from repro._version import __version__

__all__ = ["render_dashboard"]

# Categorical slots 1-3 (validated all-pairs for CVD separation on the
# light surface), plus the fixed text/surface tokens.
_PALETTE = ("#2a78d6", "#eb6834", "#1baf7a")
_SURFACE = "#fcfcfb"
_INK = "#0b0b0b"
_INK_MUTED = "#52514e"
_GRID = "#e8e7e4"

_CSS = f"""
body {{ background: {_SURFACE}; color: {_INK}; margin: 0 auto; padding: 24px;
       max-width: 960px; font: 14px/1.5 system-ui, sans-serif; }}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
h2 {{ font-size: 16px; margin: 32px 0 8px; border-bottom: 1px solid {_GRID};
      padding-bottom: 4px; }}
h3 {{ font-size: 13px; margin: 16px 0 4px; color: {_INK_MUTED}; font-weight: 600; }}
p.sub {{ color: {_INK_MUTED}; margin: 0 0 16px; }}
table {{ border-collapse: collapse; margin: 8px 0 16px; font-size: 13px; }}
th {{ text-align: left; color: {_INK_MUTED}; font-weight: 600; }}
th, td {{ padding: 3px 12px 3px 0; border-bottom: 1px solid {_GRID};
          font-variant-numeric: tabular-nums; }}
td.num, th.num {{ text-align: right; }}
.warn {{ color: #b4231f; font-weight: 600; }}
.legend {{ display: flex; gap: 16px; margin: 4px 0; font-size: 12px;
           color: {_INK_MUTED}; }}
.legend span.swatch {{ display: inline-block; width: 10px; height: 10px;
                       border-radius: 2px; margin-right: 4px; }}
.mono {{ font-family: ui-monospace, monospace; font-size: 12px; }}
svg {{ display: block; }}
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any, digits: int = 4) -> str:
    """Compact numeric formatting for table cells."""
    if value is None:
        return "–"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if not math.isfinite(value):
            return str(value)
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.{digits}g}"
        return f"{value:,.{digits}g}"
    return str(value)


def _ticks(lo: float, hi: float, n: int = 4) -> list[float]:
    """A few round tick values covering [lo, hi]."""
    if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= lo:
        return [lo]
    raw = (hi - lo) / n
    mag = 10.0 ** math.floor(math.log10(raw))
    step = min(s for s in (1 * mag, 2 * mag, 5 * mag, 10 * mag) if s >= raw)
    first = math.ceil(lo / step) * step
    out = []
    t = first
    while t <= hi + 1e-12 * step:
        out.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return out or [lo]


class _Series:
    """One polyline: a label plus (x, y) points with finite y."""

    def __init__(self, label: str, xs: Sequence[float], ys: Sequence[float]):
        pts = [
            (float(x), float(y))
            for x, y in zip(xs, ys)
            if y is not None and math.isfinite(float(y)) and x is not None
        ]
        self.label = label
        self.points = pts


def _line_chart(
    series: list[_Series],
    *,
    x_label: str,
    y_label: str,
    log_y: bool = False,
    width: int = 640,
    height: int = 260,
) -> str:
    """Hand-rolled SVG line chart: single y-axis, light grid, 2px
    polylines in the fixed categorical order, native ``<title>``
    tooltips on point markers."""
    series = [s for s in series if s.points]
    if not series:
        return '<p class="sub">no data</p>'
    if log_y:
        series = [
            _Series(s.label, *zip(*[(x, math.log10(y)) for x, y in s.points if y > 0]))
            if any(y > 0 for _, y in s.points)
            else _Series(s.label, [], [])
            for s in series
        ]
        series = [s for s in series if s.points]
        if not series:
            return '<p class="sub">no data</p>'
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        pad = abs(y_lo) * 0.1 or 1.0
        y_lo, y_hi = y_lo - pad, y_hi + pad
    else:
        pad = (y_hi - y_lo) * 0.08
        y_lo, y_hi = y_lo - pad, y_hi + pad
    ml, mr, mt, mb = 64, 16, 12, 40
    pw, ph = width - ml - mr, height - mt - mb

    def sx(x: float) -> float:
        return ml + (x - x_lo) / (x_hi - x_lo) * pw

    def sy(y: float) -> float:
        return mt + (1.0 - (y - y_lo) / (y_hi - y_lo)) * ph

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}"'
        f' role="img" style="max-width:100%">'
    ]
    for t in _ticks(y_lo, y_hi):
        y = sy(t)
        label = f"1e{t:g}" if log_y else _fmt(float(f"{t:.6g}"), 3)
        parts.append(
            f'<line x1="{ml}" y1="{y:.1f}" x2="{ml + pw}" y2="{y:.1f}"'
            f' stroke="{_GRID}" stroke-width="1"/>'
            f'<text x="{ml - 6}" y="{y + 4:.1f}" text-anchor="end"'
            f' font-size="11" fill="{_INK_MUTED}">{label}</text>'
        )
    for t in _ticks(x_lo, x_hi, 5):
        x = sx(t)
        parts.append(
            f'<text x="{x:.1f}" y="{mt + ph + 16}" text-anchor="middle"'
            f' font-size="11" fill="{_INK_MUTED}">{_fmt(float(f"{t:.6g}"), 3)}</text>'
        )
    parts.append(
        f'<line x1="{ml}" y1="{mt + ph}" x2="{ml + pw}" y2="{mt + ph}"'
        f' stroke="{_INK_MUTED}" stroke-width="1"/>'
        f'<text x="{ml + pw / 2:.1f}" y="{height - 6}" text-anchor="middle"'
        f' font-size="11" fill="{_INK_MUTED}">{_esc(x_label)}</text>'
        f'<text x="12" y="{mt + ph / 2:.1f}" font-size="11" fill="{_INK_MUTED}"'
        f' transform="rotate(-90 12 {mt + ph / 2:.1f})" text-anchor="middle">'
        f"{_esc(y_label)}</text>"
    )
    for i, s in enumerate(series[: len(_PALETTE)]):
        color = _PALETTE[i]
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in s.points)
        if len(s.points) > 1:
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}"'
                f' stroke-width="2" stroke-linejoin="round"/>'
            )
        # Marker density capped so hover targets stay useful on long traces.
        step = max(1, len(s.points) // 60)
        for x, y in s.points[::step]:
            yv = 10**y if log_y else y
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" fill="{color}">'
                f"<title>{_esc(s.label)}: {_esc(x_label)}={_fmt(x, 5)},"
                f" {_fmt(yv, 5)}</title></circle>"
            )
    parts.append("</svg>")
    legend = "".join(
        f'<div><span class="swatch" style="background:{_PALETTE[i]}"></span>'
        f"{_esc(s.label)}</div>"
        for i, s in enumerate(series[: len(_PALETTE)])
    )
    folded = ""
    if len(series) > len(_PALETTE):
        folded = (
            f'<p class="sub">+{len(series) - len(_PALETTE)} more series'
            " in the table below</p>"
        )
    return f'<div class="legend">{legend}</div>{"".join(parts)}{folded}'


def _bar_rows(rows: list[tuple[str, float, str]], unit: str = "s") -> str:
    """Horizontal single-hue bar breakdown (magnitude job: one hue)."""
    if not rows:
        return '<p class="sub">no spans recorded</p>'
    top = max(v for _, v, _ in rows) or 1.0
    out = ["<table><tr><th>span</th><th></th><th class='num'>wall</th></tr>"]
    for name, value, detail in rows:
        w = max(2, int(260 * value / top))
        out.append(
            f"<tr><td>{_esc(name)}</td>"
            f'<td><svg width="264" height="12"><rect x="0" y="1" width="{w}"'
            f' height="10" rx="2" fill="{_PALETTE[0]}"><title>{_esc(name)}:'
            f" {_fmt(value, 4)}{unit} {_esc(detail)}</title></rect></svg></td>"
            f'<td class="num">{_fmt(value, 4)}{unit}</td></tr>'
        )
    out.append("</table>")
    return "".join(out)


def _table(headers: list[str], rows: list[list[Any]], num_from: int = 1) -> str:
    num_cls = ' class="num"'

    def cell_html(i: int, cell: Any, tag: str) -> str:
        cls = num_cls if i >= num_from else ""
        if tag == "td" and isinstance(cell, str) and cell.startswith("<"):
            inner = cell  # pre-rendered HTML cell (bars, mono spans)
        else:
            inner = _esc(cell) if tag == "th" else _esc(_fmt(cell))
        return f"<{tag}{cls}>{inner}</{tag}>"

    head = "".join(cell_html(i, h, "th") for i, h in enumerate(headers))
    body = "".join(
        "<tr>" + "".join(cell_html(i, c, "td") for i, c in enumerate(row)) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _run_label(run: dict[str, Any]) -> str:
    return f"run {run['id']} (seed {run.get('seed')})"


def _section_runs(store: Any, runs: list[dict[str, Any]]) -> str:
    rows = []
    for r in runs:
        created = (
            time.strftime("%Y-%m-%d %H:%M", time.localtime(r["created_unix"]))
            if r.get("created_unix")
            else "–"
        )
        cmd = r.get("command")
        cmd_s = " ".join(cmd) if isinstance(cmd, list) else (cmd or "–")
        fp = (r.get("config_fingerprint") or "")[:12] or "–"
        dropped = r.get("n_dropped") or 0
        backend = r.get("sim_backend") or "–"
        fallback = r.get("sim_backend_fallback")
        if fallback:
            backend = (
                f'<span class="warn" title="{_esc(str(fallback))}">{_esc(backend)}*</span>'
            )
        else:
            backend = _esc(backend)
        rows.append(
            [
                r["id"],
                created,
                r.get("version") or "–",
                f'<span class="mono">{_esc(cmd_s[:60])}</span>',
                r.get("seed"),
                f'<span class="mono">{_esc(fp)}</span>',
                backend,
                r.get("n_events"),
                f'<span class="warn">{dropped}</span>' if dropped else "0",
                r.get("wall_s"),
            ]
        )
    return "<h2>Runs</h2>" + _table(
        ["id", "created", "version", "command", "seed", "fingerprint",
         "backend", "events", "dropped", "wall s"],
        rows,
        num_from=4,
    )


def _section_spans(store: Any, runs: list[dict[str, Any]]) -> str:
    out = ["<h2>Span timings</h2>",
           '<p class="sub">Top-level wall-time breakdown per run.</p>']
    for r in runs:
        spans = store.spans(r["id"])
        agg: dict[str, list[float]] = {}
        for s in spans:
            if (s.get("depth") or 0) == 0:
                agg.setdefault(s["name"], []).append(s.get("wall_s") or 0.0)
        rows = sorted(
            ((name, sum(ws), f"(n={len(ws)})") for name, ws in agg.items()),
            key=lambda t: -t[1],
        )
        out.append(f"<h3>{_esc(_run_label(r))}</h3>")
        out.append(_bar_rows(rows))
    return "".join(out)


def _section_adaptive(store: Any, runs: list[dict[str, Any]]) -> str:
    charts = []
    for r in runs:
        rounds = store.adaptive_rounds(r["id"])
        if not rounds:
            continue
        metrics = sorted({m for rec in rounds for m in rec["rel_ci"]})
        series = [
            _Series(
                m,
                [rec["round"] for rec in rounds if m in rec["rel_ci"]],
                [rec["rel_ci"][m] for rec in rounds if m in rec["rel_ci"]],
            )
            for m in metrics
        ]
        table = _table(
            ["round", "n available", "stop at"] + metrics,
            [
                [rec["round"], rec["n_available"], rec["stop_at"]]
                + [rec["rel_ci"].get(m) for m in metrics]
                for rec in rounds
            ],
        )
        charts.append(
            f"<h3>{_esc(_run_label(r))}</h3>"
            + _line_chart(series, x_label="round", y_label="rel CI", log_y=True)
            + table
        )
    if not charts:
        return ""
    return (
        "<h2>Adaptive replication</h2>"
        '<p class="sub">Worst-metric relative CI half-width per round; the'
        " engine stops at the smallest prefix that satisfies the target.</p>"
        + "".join(charts)
    )


def _section_epochs(store: Any, runs: list[dict[str, Any]]) -> str:
    charts = []
    for r in runs:
        trace = store.epoch_trace(r["id"])
        if not trace:
            continue
        ts = [rec["t"] for rec in trace]
        n_tiers = len(trace[0].get("speeds") or [])
        speed_series = [
            _Series(
                f"tier {k} speed",
                ts,
                [(rec.get("speeds") or [None] * (k + 1))[k] for rec in trace],
            )
            for k in range(n_tiers)
        ]
        queue_series = [
            _Series(
                "total queue",
                ts,
                [
                    float(sum(sum(row) if isinstance(row, list) else row
                              for row in (rec.get("queues") or [])))
                    for rec in trace
                ],
            )
        ]
        energy_series = [
            _Series("dynamic energy", ts, [rec.get("dynamic_energy") for rec in trace])
        ]
        charts.append(
            f"<h3>{_esc(_run_label(r))} — speeds</h3>"
            + _line_chart(speed_series, x_label="t", y_label="speed")
            + f"<h3>{_esc(_run_label(r))} — queue / energy</h3>"
            + _line_chart(queue_series, x_label="t", y_label="jobs in system")
            + _line_chart(energy_series, x_label="t", y_label="cumulative energy")
        )
    if not charts:
        return ""
    return (
        "<h2>Controller epoch traces</h2>"
        '<p class="sub">Per-decision-epoch applied speeds, total queue length'
        " and cumulative dynamic energy (A7 closed-loop runs).</p>"
        + "".join(charts)
    )


def _section_frontiers(store: Any, runs: list[dict[str, Any]]) -> str:
    points = store.sweep_points()
    if not points:
        return ""
    by_label: dict[str, dict[int, list[dict[str, Any]]]] = {}
    for p in points:
        if p.get("value") is None or p.get("fun") is None:
            continue
        by_label.setdefault(p["label"] or "(unlabeled)", {}).setdefault(
            p["run_id"], []
        ).append(p)
    run_ids = {r["id"]: r for r in runs}
    charts = []
    for label in sorted(by_label):
        per_run = by_label[label]
        series = [
            _Series(
                _run_label(run_ids.get(rid, {"id": rid, "seed": "?"})),
                [p["value"] for p in pts],
                [p["fun"] for p in pts],
            )
            for rid, pts in sorted(per_run.items())
        ]
        rows = [
            [run_ids.get(rid, {}).get("id", rid), p["value"], p["fun"],
             bool(p.get("warm")), p.get("n_evaluations"), p.get("wall_s")]
            for rid, pts in sorted(per_run.items())
            for p in pts
        ]
        charts.append(
            f"<h3>{_esc(label)}</h3>"
            + _line_chart(series, x_label="constraint value", y_label="objective")
            + _table(["run", "value", "objective", "warm", "evals", "wall s"], rows)
        )
    if not charts:
        return ""
    return (
        "<h2>Frontier overlays</h2>"
        '<p class="sub">Continuation-sweep objectives by constraint value,'
        " overlaid across runs sharing a sweep label.</p>" + "".join(charts)
    )


def _section_fleet(store: Any) -> str:
    sweeps = store.fleet_sweeps()
    if not sweeps:
        return ""
    blocks = []
    for sweep in sweeps:
        scen = store.fleet_scenarios(sweep["id"])
        if not scen:
            continue
        # Chart delay vs the swept parameter when the grid has one
        # numeric axis; fall back to the scenario index otherwise.
        param_keys = {k for s in scen for k in s["params"]}
        axis = None
        if len(param_keys) == 1:
            key = next(iter(param_keys))
            vals = [s["params"].get(key) for s in scen]
            if all(isinstance(v, (int, float)) for v in vals):
                axis = (key, vals)
        xs = axis[1] if axis else [s["scenario"] for s in scen]
        series = [_Series("mean delay", xs, [s["mean_delay"] for s in scen])]
        failed = sweep.get("n_failed") or 0
        failed_s = f" · {failed} failed" if failed else ""
        blocks.append(
            f"<h3>{_esc(Path(sweep['store_dir']).name)}</h3>"
            f'<p class="sub">{sweep.get("n_rows", 0)} units · '
            f'{sweep.get("n_scenarios", 0)} scenarios × '
            f'{sweep.get("n_replications", "?")} replications · '
            f'{_esc(sweep.get("backend") or "?")} backend · '
            f'{_esc(sweep.get("fmt") or "?")} store{failed_s}</p>'
            + _line_chart(
                series,
                x_label=axis[0] if axis else "scenario",
                y_label="mean delay (s)",
            )
            + _table(
                ["scenario", "units", "mean delay (s)", "std", "power (W)",
                 "std", "energy (J/req)"],
                [
                    [s["label"], s["n"], s["mean_delay"], s["mean_delay_std"],
                     s["average_power"], s["average_power_std"],
                     s["energy_per_request"]]
                    for s in scen
                ],
            )
        )
    if not blocks:
        return ""
    return (
        "<h2>Fleet sweeps</h2>"
        '<p class="sub">Per-scenario aggregates of columnar fleet stores'
        " (<code>repro fleet</code> → <code>repro telemetry ingest"
        " --fleet DIR</code>).</p>" + "".join(blocks)
    )


def _section_bench(history_path: Path) -> str:
    if not history_path.exists():
        return ""
    entries = []
    with open(history_path) as fh:
        for line in fh:
            if line.strip():
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    if not entries:
        return ""
    kernels = sorted({k for e in entries for k in (e.get("kernels") or {})})
    xs = list(range(len(entries)))
    series = [
        _Series(
            k,
            [i for i in xs if k in (entries[i].get("kernels") or {})],
            [entries[i]["kernels"][k] for i in xs if k in (entries[i].get("kernels") or {})],
        )
        for k in kernels
    ]
    rows = [
        [i,
         time.strftime("%Y-%m-%d %H:%M", time.localtime(e["created_unix"]))
         if e.get("created_unix") else "–"]
        + [(e.get("kernels") or {}).get(k) for k in kernels]
        for i, e in enumerate(entries)
    ]
    return (
        "<h2>Benchmark history</h2>"
        '<p class="sub">Calibration-normalized kernel times per recorded'
        " bench run (dimensionless; the regression detector flags a run"
        " above its rolling median by more than the tolerance).</p>"
        + _line_chart(series, x_label="bench run", y_label="normalized time",
                      log_y=True)
        + _table(["#", "recorded"] + kernels, rows, num_from=2)
    )


def render_dashboard(
    store: Any,
    out_path: str | Path | None = None,
    *,
    bench_history: str | Path | None = None,
    title: str = "repro operations dashboard",
) -> str:
    """Render the full dashboard HTML from ``store`` (a
    :class:`~repro.obs.store.RunStore`); optionally write it to
    ``out_path`` and/or append a benchmark-history section read from
    ``bench_history`` (a ``BENCH_history.jsonl``)."""
    runs = store.runs()
    generated = time.strftime("%Y-%m-%d %H:%M:%S")
    dropped_total = sum(r.get("n_dropped") or 0 for r in runs)
    warn = (
        f'<p class="warn">⚠ {dropped_total} telemetry event(s) were dropped'
        " across these runs — event logs are incomplete.</p>"
        if dropped_total
        else ""
    )
    body = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">{len(runs)} run(s) · generated {generated}'
        f" · repro {__version__}</p>",
        warn,
    ]
    if not runs:
        body.append("<p>No runs ingested yet — run experiments with"
                    " <code>--telemetry DIR</code> and"
                    " <code>repro telemetry ingest DIR</code>.</p>")
    else:
        body.append(_section_runs(store, runs))
        body.append(_section_spans(store, runs))
        body.append(_section_adaptive(store, runs))
        body.append(_section_epochs(store, runs))
        body.append(_section_frontiers(store, runs))
    body.append(_section_fleet(store))
    if bench_history is not None:
        body.append(_section_bench(Path(bench_history)))
    doc = (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body>{''.join(body)}</body></html>"
    )
    if out_path is not None:
        out = Path(out_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(doc)
    return doc
