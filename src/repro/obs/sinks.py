"""Event sinks: where emitted telemetry events go.

Two implementations cover the library's needs:

* :class:`InMemorySink` — a list, for tests and interactive inspection;
* :class:`JsonlSink` — one JSON object per line, written line-buffered
  to ``<path>.tmp`` and atomically renamed to ``<path>`` on
  :meth:`~JsonlSink.finalize` (a crash mid-run leaves the ``.tmp``
  partial file, never a half-written final artifact).

Both guarantee the schema contract checked by the round-trip tests:
every emitted event is a JSON-serializable dict that parses back to an
equal dict.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["InMemorySink", "JsonlSink"]


class InMemorySink:
    """Collect events in a list (``sink.events``)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Line-buffered JSONL writer with atomic finalize.

    Events are serialized with ``sort_keys=True`` so a byte-identical
    event always produces a byte-identical line. Serialization errors
    are swallowed into a ``n_dropped`` count — telemetry must never
    take the computation down with it.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        self._fh = open(self._tmp, "w", buffering=1)
        self.n_events = 0
        self.n_dropped = 0

    def emit(self, event: dict[str, Any]) -> None:
        try:
            line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            self.n_dropped += 1
            return
        self._fh.write(line + "\n")
        self.n_events += 1

    def finalize(self) -> Path:
        """Flush, fsync and atomically rename into place."""
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            os.replace(self._tmp, self.path)
        return self.path

    # The tracer only requires close(); alias it to the atomic rename.
    close = finalize
