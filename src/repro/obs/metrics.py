"""Process-wide metric registry: counters, gauges, histograms, timers.

Every long-lived quantity the library wants to expose — simulator
events processed, cache hits, solver iterations — is registered here
under a dotted name (``sim.events``, ``sim.cache.hits``, ...). The
design goal is a **near-zero-cost disabled path**: when telemetry is
off (the default), every accessor returns a shared null instrument
whose mutating methods are no-ops, so instrumented code pays one
dictionary-free attribute call and allocates nothing.

Instrumented call sites therefore fetch their instrument *per
operation* (per replication, per solve — never per simulated event)::

    from repro import obs
    obs.counter("sim.events").add(n_events)

Hot loops must aggregate locally and record once at the end — the
simulator already counts its events in a local variable; telemetry
only sees the total.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


class Counter:
    """Monotone event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self) -> None:
        """Add one."""
        self.value += 1

    def add(self, n: int | float) -> None:
        """Add ``n`` (must be >= 0 to stay monotone)."""
        self.value += n

    def as_dict(self) -> dict[str, Any]:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """Last-observed value (e.g. current queue length)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, v: float) -> None:
        self.value = v

    def as_dict(self) -> dict[str, Any]:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count/sum/min/max (constant memory, no reservoir); quantiles
    belong in the JSONL event stream where the raw observations land.
    A :class:`Histogram` observed in seconds *is* the library's timer —
    :meth:`MetricsRegistry.timer` registers one under the convention
    that its unit is seconds.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
        }


class _NullCounter(Counter):
    """Shared no-op counter handed out while telemetry is disabled."""

    __slots__ = ()

    def inc(self) -> None:
        pass

    def add(self, n: int | float) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, v: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, v: float) -> None:
        pass


# Module-level singletons: the disabled path allocates nothing.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Name → instrument mapping with an on/off switch.

    While disabled (default) every accessor returns the corresponding
    module-level null singleton and records nothing; while enabled,
    instruments are created on first use and accumulate until
    :meth:`reset`.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (null when disabled)."""
        if not self.enabled:
            return NULL_COUNTER
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = Counter(name)
        elif not isinstance(m, Counter):
            raise TypeError(f"metric {name!r} is a {type(m).__name__}, not a Counter")
        return m

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (null when disabled)."""
        if not self.enabled:
            return NULL_GAUGE
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = Gauge(name)
        elif not isinstance(m, Gauge):
            raise TypeError(f"metric {name!r} is a {type(m).__name__}, not a Gauge")
        return m

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (null when disabled)."""
        if not self.enabled:
            return NULL_HISTOGRAM
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = Histogram(name)
        elif not isinstance(m, Histogram):
            raise TypeError(f"metric {name!r} is a {type(m).__name__}, not a Histogram")
        return m

    def timer(self, name: str) -> Histogram:
        """A histogram whose observations are wall seconds."""
        return self.histogram(name)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-dict view of every registered instrument, sorted by
        name (deterministic for the run manifest)."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def reset(self) -> None:
        """Drop every registered instrument."""
        self._metrics.clear()
