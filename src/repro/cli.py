"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    The experiment registry: every reconstructed table/figure with its
    ID and title.
``run <ID> [--quick] [--out FILE] [--jobs N] [--cache-dir DIR]``
    Execute one experiment and print (optionally save) its rendered
    table. ``--quick`` uses the registry's fast parameters; ``--jobs``
    parallelizes the simulation replications of simulation-backed
    experiments and the independent series of the analytic sweeps
    (F3/F4/F5/F6/A4); ``--cache-dir`` memoizes replications on disk.
    Numbers are unchanged by either flag. ``--target-rel-ci FRAC``
    (with optional ``--max-reps N``) switches the adaptive-capable
    experiments (T1/T2/F7) to the precision-targeted replication
    engine: replications stop as soon as the headline metrics reach
    the requested relative CI half-width.
``simulate [--jobs N] [--cache-dir DIR] [--target-rel-ci FRAC] ...``
    Replicated simulation of the canonical cluster with live
    per-replication progress (wall time, events/sec, cache hits).
    With ``--target-rel-ci`` the adaptive engine picks the
    replication count and reports the per-round precision trace.
``fleet --out DIR [--load-factors ...] [--replications N] [--jobs N]``
    Fleet-scale sweep: every (scenario × replication) unit pulled off
    a shared work-stealing queue by a process pool, one compact metric
    row per unit streamed into a columnar result store (Parquet when
    ``pyarrow`` is importable, compressed npz otherwise). With
    ``--telemetry DIR``, ``repro status DIR`` tails live progress;
    ``repro telemetry ingest --fleet DIR`` folds per-scenario
    aggregates into the SQLite store.
``report [--load-factor F]``
    Analytic delay/energy report of the canonical cluster under the
    canonical workload — the fastest way to see claim-1 numbers.
``solve {p1,p2,p3} [options]``
    Run one of the paper's optimizers on the canonical instance.
``bench [--out FILE] [--check BASELINE] [--repeats N]``
    Time the library's hot kernels (simulation replication, scalar and
    batched analytic evaluation, optimizer solves, the exhaustive
    baseline) and optionally compare calibration-normalized times
    against a committed JSON baseline — the CI perf-smoke gate.
``telemetry summarize <DIR> [DIR...]``
    Human-readable summary of telemetry artifacts (manifest +
    events.jsonl) produced by ``--telemetry DIR`` on ``run`` /
    ``run-all`` / ``simulate``: slowest spans, per-replication event
    throughput, solver iteration counts, cache hit ratio. With several
    directories, adds a side-by-side comparison table grouped by
    configuration fingerprint.
``telemetry ingest <DIR> [DIR...] [--store FILE]``
    Load telemetry artifacts into the cross-run SQLite store
    (idempotent per directory) that ``repro dashboard`` renders.
``status <DIR>``
    Live progress of a run writing telemetry to ``<DIR>`` — tails the
    append-only ``progress.jsonl`` heartbeat without touching the run.
``dashboard [--store FILE] [--out FILE]``
    Render the run store as one self-contained static HTML page (run
    table, span timings, adaptive/controller traces, frontier
    overlays, optional bench history).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power & performance management in priority-type clusters (IPDPS 2011 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible experiments")

    def add_engine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for simulation replications and analytic "
            "sweep series (-1 = all cores)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            help="directory memoizing finished replications (content-addressed)",
        )
        p.add_argument(
            "--telemetry",
            metavar="DIR",
            default=None,
            help="write a run manifest + JSONL telemetry events to this directory "
            "(read back with: repro telemetry summarize DIR)",
        )
        p.add_argument(
            "--telemetry-sample-queues",
            action="store_true",
            help="with --telemetry: also sample per-tier queue lengths inside the simulator",
        )
        p.add_argument(
            "--target-rel-ci",
            type=float,
            default=None,
            metavar="FRAC",
            help="adaptive precision target: stop replicating once the 95%% CI "
            "half-width of the headline metrics (mean delay, average power) "
            "falls below this fraction of their values (e.g. 0.02)",
        )
        p.add_argument(
            "--max-reps",
            type=int,
            default=None,
            help="with --target-rel-ci: hard cap on replications (default: engine-chosen)",
        )

    run_p = sub.add_parser("run", help="run one experiment by ID")
    run_p.add_argument("experiment_id", help="experiment ID, e.g. T1, F3, A4")
    run_p.add_argument("--quick", action="store_true", help="use fast parameters")
    run_p.add_argument("--out", help="also write the rendered table to this file")
    run_p.add_argument(
        "--controller",
        choices=["all", "oracle", "forecast", "max-speed", "dpp"],
        default=None,
        help="online-control experiment (A7) only: run a single policy",
    )
    run_p.add_argument(
        "--v-param",
        type=float,
        default=None,
        help="online-control experiment (A7) only: drift-plus-penalty V knob",
    )
    add_engine_options(run_p)

    all_p = sub.add_parser("run-all", help="run every experiment (quick parameters)")
    all_p.add_argument("--out-dir", help="write each rendered table to <out-dir>/<ID>.txt")
    all_p.add_argument(
        "--full", action="store_true", help="use full parameters (slow; use the benchmarks instead)"
    )
    add_engine_options(all_p)

    sim_p = sub.add_parser(
        "simulate", help="replicated simulation of the canonical cluster with progress"
    )
    sim_p.add_argument("--load-factor", type=float, default=1.0)
    sim_p.add_argument("--horizon", type=float, default=1000.0)
    sim_p.add_argument("--replications", type=int, default=5)
    sim_p.add_argument("--seed", type=int, default=0)
    sim_p.add_argument("--warmup-fraction", type=float, default=0.1)
    add_engine_options(sim_p)

    fleet_p = sub.add_parser(
        "fleet",
        help="fleet-scale (scenario x replication) sweep into a columnar result store",
    )
    fleet_p.add_argument(
        "--load-factors",
        default="0.6,0.8,1.0,1.2",
        help="comma-separated load factors defining the scenario grid",
    )
    fleet_p.add_argument(
        "--replications", type=int, default=25, help="replications per scenario"
    )
    fleet_p.add_argument("--horizon", type=float, default=200.0)
    fleet_p.add_argument("--warmup-fraction", type=float, default=0.1)
    fleet_p.add_argument("--seed", type=int, default=0)
    fleet_p.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="directory the columnar store is created in (must not already hold one)",
    )
    fleet_p.add_argument(
        "--backend",
        choices=["python", "compiled", "auto"],
        default=None,
        help="simulation backend for the workers (default: REPRO_SIM_BACKEND or python)",
    )
    fleet_p.add_argument(
        "--format",
        choices=["parquet", "npz"],
        default=None,
        help="row-group format (default: parquet when pyarrow is importable, else npz)",
    )
    fleet_p.add_argument(
        "--jobs",
        type=int,
        default=-1,
        help="worker processes pulling units off the shared queue (-1 = all cores)",
    )
    fleet_p.add_argument(
        "--batch-size",
        default="auto",
        help="replications per kernel call / work-stealing chunk "
        "(positive int, or 'auto' to size from the grid and worker count; "
        "rows are bit-identical for every value)",
    )
    fleet_p.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="write a run manifest + progress heartbeat to this directory "
        "(watch with: repro status DIR)",
    )
    fleet_p.add_argument(
        "--telemetry-sample-queues", action="store_true", help=argparse.SUPPRESS
    )

    rep_p = sub.add_parser("report", help="analytic report of the canonical cluster")
    rep_p.add_argument("--load-factor", type=float, default=1.0)

    sum_p = sub.add_parser("summary", help="assemble experiment artifacts into one report")
    sum_p.add_argument("--results-dir", default="benchmarks/results")
    sum_p.add_argument("--out", help="write the Markdown report to this file")

    diag_p = sub.add_parser("diagnose", help="pre-flight diagnostics of the canonical cluster")
    diag_p.add_argument("--load-factor", type=float, default=1.0)

    solve_p = sub.add_parser("solve", help="run a paper optimizer on the canonical instance")
    solve_p.add_argument("problem", choices=["p1", "p2", "p3"])
    solve_p.add_argument("--load-factor", type=float, default=1.0)
    solve_p.add_argument(
        "--budget-fraction",
        type=float,
        default=0.9,
        help="p1: power budget as a fraction of the full-speed power",
    )
    solve_p.add_argument(
        "--delay-slack",
        type=float,
        default=1.25,
        help="p2: per-class delay bounds as a multiple of the full-speed delays",
    )

    bench_p = sub.add_parser(
        "bench", help="time the hot kernels; write or check a JSON baseline"
    )
    bench_p.add_argument("--out", help="write the timing document to this JSON file")
    bench_p.add_argument("--repeats", type=int, default=5, help="timed runs per kernel (min wins)")
    bench_p.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against this baseline JSON; exit 1 if a gated kernel regressed",
    )
    bench_p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative slowdown of gated kernels before --check fails",
    )
    bench_p.add_argument(
        "--gate",
        action="append",
        help="kernel that fails --check on regression (repeatable; default: the sim kernel)",
    )
    bench_p.add_argument(
        "--record",
        action="store_true",
        help="append this run (calibration-normalized) to the bench history JSONL",
    )
    bench_p.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help="bench history JSONL to check against / record to "
        "(default: benchmarks/results/BENCH_history.jsonl)",
    )
    bench_p.add_argument(
        "--history-tolerance",
        type=float,
        default=0.5,
        help="allowed slowdown of gated kernels over the rolling history median",
    )
    bench_p.add_argument(
        "--history-window",
        type=int,
        default=5,
        help="history entries the rolling median is taken over",
    )

    tel_p = sub.add_parser("telemetry", help="inspect telemetry artifacts")
    tel_sub = tel_p.add_subparsers(dest="telemetry_command", required=True)
    tel_sum = tel_sub.add_parser(
        "summarize", help="render --telemetry artifacts as human-readable tables"
    )
    tel_sum.add_argument(
        "paths",
        nargs="+",
        metavar="path",
        help="directory (or manifest.json) written by --telemetry; several "
        "directories add a side-by-side comparison",
    )
    tel_sum.add_argument("--top", type=int, default=10, help="number of slowest spans to show")
    tel_ing = tel_sub.add_parser(
        "ingest", help="load telemetry artifacts into the cross-run SQLite store"
    )
    tel_ing.add_argument("paths", nargs="*", metavar="path",
                         help="telemetry directories to ingest")
    tel_ing.add_argument(
        "--fleet",
        action="append",
        metavar="DIR",
        default=None,
        help="also ingest this columnar fleet store (repeatable; per-scenario "
        "aggregates land in the fleet_sweeps/fleet_scenarios tables)",
    )
    tel_ing.add_argument(
        "--store",
        default=None,
        help="SQLite store file (default: runs.sqlite in the current directory)",
    )

    status_p = sub.add_parser(
        "status", help="live progress of a run writing telemetry to a directory"
    )
    status_p.add_argument("path", help="telemetry directory (or progress.jsonl) of the run")

    dash_p = sub.add_parser(
        "dashboard", help="render the run store as one self-contained HTML page"
    )
    dash_p.add_argument(
        "--store",
        default=None,
        help="SQLite store file (default: runs.sqlite in the current directory)",
    )
    dash_p.add_argument(
        "--out", default="dashboard.html", help="output HTML file (default: dashboard.html)"
    )
    dash_p.add_argument(
        "--bench-history",
        metavar="FILE",
        default=None,
        help="also chart this bench history JSONL (e.g. benchmarks/results/BENCH_history.jsonl)",
    )
    return parser


def _cmd_list() -> int:
    from repro.analysis.tables import ascii_table
    from repro.experiments.registry import REGISTRY

    rows = [[e.id, e.title] for e in REGISTRY.values()]
    print(ascii_table(["ID", "experiment"], rows, title="Reproducible experiments"))
    print("\nrun one with: python -m repro run <ID> [--quick]")
    return 0


def _cmd_run(
    experiment_id: str,
    quick: bool,
    out: str | None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    target_rel_ci: float | None = None,
    max_reps: int | None = None,
    controller: str | None = None,
    v_param: float | None = None,
) -> int:
    from repro import obs
    from repro.experiments.registry import run_experiment

    obs.TELEMETRY.annotate(config={"experiment": experiment_id.upper(), "quick": quick})
    text = run_experiment(
        experiment_id,
        quick=quick,
        n_jobs=jobs,
        cache_dir=cache_dir,
        target_rel_ci=target_rel_ci,
        max_reps=max_reps,
        controller=controller,
        v_param=v_param,
    )
    print(text)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")
        print(f"[written to {out}]")
    return 0


def _cmd_run_all(
    out_dir: str | None,
    full: bool,
    jobs: int | None = None,
    cache_dir: str | None = None,
    target_rel_ci: float | None = None,
    max_reps: int | None = None,
) -> int:
    import pathlib

    from repro import obs
    from repro.experiments.registry import REGISTRY

    obs.TELEMETRY.annotate(config={"experiment": "ALL", "quick": not full})
    target = pathlib.Path(out_dir) if out_dir else None
    if target:
        target.mkdir(parents=True, exist_ok=True)
    failures = []
    for exp in REGISTRY.values():
        with obs.span("cli.run_experiment", id=exp.id) as sp:
            try:
                text = exp.render(
                    exp.run(
                        quick=not full,
                        n_jobs=jobs,
                        cache_dir=cache_dir,
                        target_rel_ci=target_rel_ci,
                        max_reps=max_reps,
                    )
                )
            except Exception as exc:  # surface, keep going
                failures.append(exp.id)
                print(f"== {exp.id} FAILED: {exc}")
                continue
        print(f"== {exp.id} ({sp.wall_s:.1f}s)\n{text}\n")
        if target:
            (target / f"{exp.id}.txt").write_text(text + "\n")
    if failures:
        print(f"failed experiments: {failures}")
        return 1
    print(f"all {len(REGISTRY)} experiments completed")
    return 0


def _cmd_report(load_factor: float) -> int:
    from repro.analysis.tables import ascii_table
    from repro.core.perf_model import ClusterPerformanceModel
    from repro.experiments.common import canonical_cluster, canonical_workload

    model = ClusterPerformanceModel(canonical_cluster(), canonical_workload(load_factor))
    rep = model.report()
    rows = [
        [name, round(t, 4), round(e, 2)]
        for name, t, e in zip(rep.class_names, rep.delays, rep.energy_per_class)
    ]
    print(
        ascii_table(
            ["class", "mean delay (s)", "energy (J/req)"],
            rows,
            title=f"Canonical cluster at load factor {load_factor:g}",
        )
    )
    print(f"mean delay {rep.mean_delay:.4f} s | power {rep.average_power:.1f} W")
    print(f"tier utilizations: {np.round(rep.utilizations, 3).tolist()}")
    return 0


def _cmd_simulate(
    load_factor: float,
    horizon: float,
    replications: int,
    seed: int,
    warmup_fraction: float,
    jobs: int | None,
    cache_dir: str | None,
    target_rel_ci: float | None = None,
    max_reps: int | None = None,
) -> int:
    """Replicated simulation of the canonical cluster with live
    per-replication progress — the CLI surface of the parallel
    replication engine's observability. With ``--target-rel-ci`` the
    adaptive engine decides how many replications the precision target
    actually needs."""
    from repro import obs
    from repro.analysis.tables import ascii_table
    from repro.experiments.common import canonical_cluster, canonical_workload
    from repro.simulation import (
        PrecisionTarget,
        simulate_replications,
        simulate_replications_adaptive,
    )

    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    obs.TELEMETRY.annotate(seed=seed, config={"cluster": cluster, "workload": workload})

    def progress(rec, done, total):
        if rec.cached:
            print(f"  [{done}/{total}] replication {rec.index}: cache hit")
        else:
            print(
                f"  [{done}/{total}] replication {rec.index}: "
                f"{rec.wall_time_s:.2f}s, {rec.events_per_sec:,.0f} events/s"
            )

    if target_rel_ci is not None:
        target = PrecisionTarget(
            rel_ci=target_rel_ci,
            max_replications=max_reps if max_reps is not None else max(4 * replications, 16),
        )
        rep = simulate_replications_adaptive(
            cluster,
            workload,
            horizon=horizon,
            target=target,
            warmup_fraction=warmup_fraction,
            seed=seed,
            n_jobs=jobs,
            cache_dir=cache_dir,
            progress=progress,
        )
        n_used = rep.meta["adaptive"]["n_used"]
        title_reps = f"{n_used} adaptive replications"
    else:
        rep = simulate_replications(
            cluster,
            workload,
            horizon=horizon,
            n_replications=replications,
            warmup_fraction=warmup_fraction,
            seed=seed,
            n_jobs=jobs,
            cache_dir=cache_dir,
            progress=progress,
        )
        title_reps = f"{replications} replications"
    rows = [
        [name, round(float(rep.delays[k]), 4), round(float(rep.delays_ci[k]), 4)]
        for k, name in enumerate(rep.class_names)
    ]
    print(
        ascii_table(
            ["class", "mean delay (s)", "95% CI"],
            rows,
            title=f"Simulated canonical cluster at load factor {load_factor:g} "
            f"({title_reps})",
        )
    )
    print(f"mean delay {rep.mean_delay:.4f} s | power {rep.average_power:.1f} W")
    m = rep.meta
    print(
        f"engine: backend={m['backend']} jobs={m['n_jobs']} cache={m['cache']} "
        f"hits={m['cache_hits']} misses={m['cache_misses']} wall={m['wall_time_s']:.2f}s"
    )
    ad = m.get("adaptive")
    if ad:
        print(
            f"adaptive: target met={ad['target_met']} rounds={ad['n_rounds']} "
            f"used={ad['n_used']}/{ad['n_simulated']} simulated "
            f"(cap {ad['target']['max_replications']}, "
            f"{ad['reps_saved_vs_cap']} saved vs cap)"
        )
        for metric, est in ad["estimates"].items():
            rel = est["rel_halfwidth"]
            print(
                f"  {metric}: {est['value']:.4g} ± {est['halfwidth']:.2g} "
                f"(rel {rel:.2%}, {est['method']})"
            )
    return 0


def _cmd_fleet(
    load_factors: str,
    replications: int,
    horizon: float,
    warmup_fraction: float,
    seed: int,
    out: str,
    backend: str | None,
    store_format: str | None,
    jobs: int | None,
    batch_size: str = "auto",
) -> int:
    """Sweep the canonical cluster over a load-factor grid into one
    columnar store — the CLI surface of the fleet runner."""
    import time

    from repro.analysis.tables import ascii_table
    from repro.experiments.common import canonical_cluster, canonical_workload
    from repro.simulation import FleetScenario, FleetStore, run_fleet

    try:
        factors = [float(x) for x in load_factors.split(",") if x.strip()]
    except ValueError:
        print(f"error: --load-factors must be comma-separated numbers, got {load_factors!r}")
        return 1
    if not factors:
        print("error: --load-factors produced an empty grid")
        return 1
    batch: int | str = batch_size
    if batch != "auto":
        try:
            batch = int(batch)
        except (TypeError, ValueError):
            print(f"error: --batch-size must be a positive integer or 'auto', got {batch_size!r}")
            return 1
        if batch < 1:
            print(f"error: --batch-size must be a positive integer or 'auto', got {batch_size!r}")
            return 1
    cluster = canonical_cluster()
    scenarios = [
        FleetScenario(
            label=f"load={f:g}",
            cluster=cluster,
            workload=canonical_workload(f),
            horizon=horizon,
            warmup_fraction=warmup_fraction,
            params={"load_factor": f},
        )
        for f in factors
    ]
    n_units = len(scenarios) * replications
    print(
        f"fleet: {len(scenarios)} scenarios x {replications} replications "
        f"= {n_units} units -> {out}"
    )
    start = time.perf_counter()
    last_line_len = 0

    def progress(n_done: int, n_failed: int, n_total: int) -> None:
        nonlocal last_line_len
        rate = n_done / max(time.perf_counter() - start, 1e-9)
        failed = f", {n_failed} failed" if n_failed else ""
        line = f"  {n_done}/{n_total} units ({rate:,.0f} units/s{failed})"
        pad = " " * max(0, last_line_len - len(line))
        print("\r" + line + pad, end="", flush=True)
        last_line_len = len(line)

    summary = run_fleet(
        scenarios,
        replications,
        out,
        seed=seed,
        n_jobs=jobs,
        backend=backend,
        batch_size=batch,
        store_format=store_format,
        progress=progress,
    )
    print()
    store = FleetStore.open(out)
    rows = [
        [
            rec["label"],
            rec["n"],
            round(rec["mean_delay"]["mean"], 4),
            round(rec["mean_delay"]["std"], 4),
            round(rec["average_power"]["mean"], 1),
        ]
        for rec in store.scenario_table(metrics=["mean_delay", "average_power"])
    ]
    print(
        ascii_table(
            ["scenario", "units", "mean delay (s)", "std", "power (W)"],
            rows,
            title=f"Fleet sweep ({summary.n_done}/{summary.n_units} units, "
            f"{summary.wall_time_s:.1f}s, {summary.units_per_sec:,.0f} units/s, "
            f"{summary.n_workers} workers)",
        )
    )
    print(
        f"[store: {summary.store_path} ({store.fmt}, {store.n_rows} rows); "
        f"query with repro.simulation.FleetStore.open(...) or ingest with: "
        f"repro telemetry ingest --fleet {summary.store_path}]"
    )
    if summary.n_failed:
        print(f"WARNING: {summary.n_failed} unit(s) failed — see the store manifest")
        return 1
    return 0


def _cmd_solve(problem: str, load_factor: float, budget_fraction: float, delay_slack: float) -> int:
    from repro.core import minimize_cost, minimize_delay, minimize_energy
    from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload

    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    if problem == "p1":
        full = cluster.average_power(workload.arrival_rates)
        res = minimize_delay(cluster, workload, power_budget=budget_fraction * full)
        print(f"P1 @ budget {budget_fraction:.0%} of {full:.1f} W:")
        print(f"  speeds {np.round(res.x, 3).tolist()}")
        print(f"  mean delay {res.fun:.4f} s at {res.meta['power']:.1f} W")
    elif problem == "p2":
        from repro.core.delay import end_to_end_delays

        bounds = end_to_end_delays(cluster, workload) * delay_slack
        res = minimize_energy(cluster, workload, class_delay_bounds=bounds)
        print(f"P2b @ per-class bounds {np.round(bounds, 3).tolist()}:")
        print(f"  speeds {np.round(res.x, 3).tolist()}")
        print(f"  power {res.meta['power']:.1f} W")
    else:
        alloc = minimize_cost(cluster, workload, canonical_sla())
        print("P3 @ canonical SLA:")
        print(f"  servers {alloc.server_counts.tolist()} (cost {alloc.total_cost:g})")
        print(f"  speeds {np.round(alloc.speeds, 3).tolist()}")
        print(f"  delays {np.round(alloc.delays, 3).tolist()} | power {alloc.average_power:.1f} W")
    return 0


def _cmd_telemetry_summarize(path: str, top: int = 10) -> int:
    """Render a ``--telemetry`` artifact as human-readable tables."""
    import json
    import pathlib
    import time

    from repro.analysis.tables import ascii_table
    from repro.obs import EVENTS_FILENAME, MANIFEST_FILENAME

    root = pathlib.Path(path)
    manifest_path = root if root.is_file() else root / MANIFEST_FILENAME
    events_path = manifest_path.parent / EVENTS_FILENAME
    if not manifest_path.exists():
        print(f"error: no {MANIFEST_FILENAME} under {root} — was the run started with --telemetry?")
        return 1
    manifest = json.loads(manifest_path.read_text())
    events: list[dict] = []
    if events_path.exists():
        with open(events_path) as fh:
            events = [json.loads(line) for line in fh if line.strip()]

    cmd = manifest.get("command")
    fingerprint = manifest.get("config_fingerprint")
    created = manifest.get("created_unix")
    print(f"repro {manifest.get('version', '?')} telemetry run")
    if created:
        print(f"  created  {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(created))}")
    if cmd:
        print(f"  command  {' '.join(cmd) if isinstance(cmd, list) else cmd}")
    if manifest.get("seed") is not None:
        print(f"  seed     {manifest['seed']}")
    if fingerprint:
        print(f"  config   {fingerprint[:16]}… (canonical SHA-256)")
    host = manifest.get("host", {})
    if host:
        print(f"  host     {host.get('hostname')} ({host.get('platform')}, "
              f"{host.get('cpu_count')} cores)")
    print(f"  events   {len(events)} in {events_path.name}")
    dropped = int((manifest.get("events") or {}).get("dropped", 0) or 0)
    if dropped:
        print(f"  WARNING  {dropped} event(s) failed serialization and were "
              "dropped — the event log is incomplete")

    spans = [e for e in events if e.get("type") == "span"]
    if spans:
        slowest = sorted(spans, key=lambda e: -e.get("wall_s", 0.0))[:top]
        rows = [
            [
                ("· " * e.get("depth", 0)) + e["name"],
                round(e.get("wall_s", 0.0) * 1e3, 2),
                round(e.get("cpu_s", 0.0) * 1e3, 2),
                ", ".join(f"{k}={v}" for k, v in sorted(e.get("tags", {}).items()))[:48],
            ]
            for e in slowest
        ]
        print()
        print(ascii_table(["span", "wall ms", "cpu ms", "tags"], rows,
                          title=f"Slowest spans (top {len(rows)} of {len(spans)})"))

    reps = [e["fields"] for e in events
            if e.get("type") == "event" and e.get("name") == "sim.replication"]
    if reps:
        rows = [
            [
                r.get("index"),
                r.get("n_events"),
                round(r.get("wall_s", 0.0), 3),
                f"{r.get('events_per_sec', 0.0):,.0f}",
                "yes" if r.get("cached") else "no",
            ]
            for r in sorted(reps, key=lambda r: (r.get("index", 0),))
        ]
        print()
        print(ascii_table(["replication", "events", "wall s", "events/s", "cached"],
                          rows, title=f"Replications ({len(rows)})"))

    rounds = [e["fields"] for e in events
              if e.get("type") == "event" and e.get("name") == "sim.adaptive.round"]
    if rounds:
        rel_keys = sorted({k for r in rounds for k in r if k.startswith("rel_ci.")})
        rows = [
            [
                r.get("round"),
                r.get("n_available"),
                r.get("stop_at") if r.get("stop_at") is not None else "-",
                *(f"{r.get(k, float('nan')):.2%}" for k in rel_keys),
            ]
            for r in sorted(rounds, key=lambda r: (r.get("round", 0),))
        ]
        print()
        print(ascii_table(
            ["round", "reps available", "stop at", *(k.removeprefix("rel_ci.") for k in rel_keys)],
            rows, title=f"Adaptive precision rounds ({len(rows)})"))

    solves = [e["fields"] for e in events
              if e.get("type") == "event" and e.get("name") == "solver.result"]
    if solves:
        rows = [
            [
                s.get("label") or "?",
                s.get("method"),
                s.get("nit"),
                s.get("nfev"),
                s.get("n_evaluations"),
                s.get("status"),
                "yes" if s.get("success") else "no",
                round(s.get("wall_s", 0.0) * 1e3, 1),
            ]
            for s in solves
        ]
        print()
        print(ascii_table(
            ["problem", "method", "nit", "nfev", "total evals", "status", "ok", "wall ms"],
            rows, title=f"Optimizer solves ({len(rows)})"))

    metrics = manifest.get("metrics", {})
    hits = metrics.get("sim.cache.hits", {}).get("value", 0)
    misses = metrics.get("sim.cache.misses", {}).get("value", 0)
    interesting = {
        "sim.events": "simulator events",
        "sim.jobs_created": "jobs created",
        "sim.jobs_counted": "jobs counted",
        "sim.adaptive.rounds": "adaptive rounds",
        "sim.adaptive.reps_saved": "adaptive replications saved",
        "opt.solves": "optimizer solves",
        "opt.evaluations": "model evaluations",
    }
    counter_rows = [
        [label, metrics[name]["value"]]
        for name, label in interesting.items()
        if name in metrics
    ]
    if hits or misses:
        ratio = hits / (hits + misses) if (hits + misses) else 0.0
        counter_rows.append(["cache hits / misses", f"{hits} / {misses} ({ratio:.0%} hit ratio)"])
    if counter_rows:
        print()
        print(ascii_table(["counter", "value"], counter_rows, title="Counters"))
    return 0


def _telemetry_compare(paths: list[str]) -> int:
    """Side-by-side comparison of several telemetry artifacts.

    Rows are the cross-run vitals (wall time, events, dropped events,
    cache hits, solver evaluations); columns are the runs. Runs are
    grouped by configuration fingerprint — numbers are only directly
    comparable within one group, and the table says which runs share
    one.
    """
    import json
    import pathlib

    from repro.analysis.tables import ascii_table
    from repro.obs import EVENTS_FILENAME, MANIFEST_FILENAME

    loaded = []
    for path in paths:
        root = pathlib.Path(path)
        manifest_path = root if root.is_file() else root / MANIFEST_FILENAME
        if not manifest_path.exists():
            print(f"error: no {MANIFEST_FILENAME} under {root}")
            return 1
        manifest = json.loads(manifest_path.read_text())
        events_path = manifest_path.parent / EVENTS_FILENAME
        events: list[dict] = []
        if events_path.exists():
            with open(events_path) as fh:
                events = [json.loads(line) for line in fh if line.strip()]
        loaded.append((manifest_path.parent.name or str(manifest_path.parent), manifest, events))

    fingerprints = [(m.get("config_fingerprint") or "")[:10] or "?" for _, m, _ in loaded]
    groups: dict[str, list[int]] = {}
    for i, fp in enumerate(fingerprints):
        groups.setdefault(fp, []).append(i)

    def metric(m: dict, name: str) -> object:
        return (m.get("metrics", {}).get(name) or {}).get("value", 0)

    def wall(m: dict) -> float:
        return sum(s.get("wall_s", 0.0) for s in m.get("spans", []))

    rows = [
        ["fingerprint", *fingerprints],
        ["seed", *(m.get("seed") for _, m, _ in loaded)],
        ["version", *(m.get("version") for _, m, _ in loaded)],
        ["wall s (root spans)", *(round(wall(m), 3) for _, m, _ in loaded)],
        ["events", *(len(ev) for _, _, ev in loaded)],
        ["events dropped", *((m.get("events") or {}).get("dropped", 0) for _, m, _ in loaded)],
        ["sim events", *(metric(m, "sim.events") for _, m, _ in loaded)],
        ["cache hits", *(metric(m, "sim.cache.hits") for _, m, _ in loaded)],
        ["cache misses", *(metric(m, "sim.cache.misses") for _, m, _ in loaded)],
        ["solver evals", *(metric(m, "opt.evaluations") for _, m, _ in loaded)],
    ]
    print()
    print(ascii_table(
        ["", *(name for name, _, _ in loaded)],
        rows,
        title=f"Run comparison ({len(loaded)} runs)",
    ))
    shared = [fp for fp, idx in groups.items() if len(idx) > 1]
    if shared:
        print(f"runs sharing a fingerprint (directly comparable): {', '.join(shared)}")
    elif len(loaded) > 1:
        print("note: no two runs share a configuration fingerprint — "
              "numbers are not directly comparable")
    return 0


def _cmd_telemetry_ingest(
    paths: list[str], store_path: str | None, fleet: list[str] | None = None
) -> int:
    """Load telemetry directories (and fleet stores) into the cross-run
    SQLite store."""
    from repro.exceptions import ModelValidationError
    from repro.obs import STORE_FILENAME, RunStore

    if not paths and not fleet:
        print("error: nothing to ingest — give telemetry directories and/or --fleet DIR")
        return 1
    target = store_path or STORE_FILENAME
    code = 0
    with RunStore(target) as store:
        for path in paths:
            try:
                run_id = store.ingest(path)
            except (FileNotFoundError, ValueError) as exc:
                print(f"error: {exc}")
                code = 1
                continue
            run = store.run(run_id)
            dropped = run.get("n_dropped") or 0
            note = f" (WARNING: {dropped} dropped events)" if dropped else ""
            n_records = len(store.spans(run_id)) + len(store.events(run_id))
            print(f"ingested {path} as run {run_id} "
                  f"({n_records} records, seed {run.get('seed')}){note}")
        for path in fleet or []:
            try:
                sweep_id = store.ingest_fleet(path)
            except (FileNotFoundError, ModelValidationError) as exc:
                print(f"error: {exc}")
                code = 1
                continue
            scen = store.fleet_scenarios(sweep_id)
            n_units = sum(r["n"] for r in scen)
            print(f"ingested fleet store {path} as sweep {sweep_id} "
                  f"({len(scen)} scenarios, {n_units} units)")
        n = len(store.runs())
        n_sweeps = len(store.fleet_sweeps())
    sweeps_s = f" and {n_sweeps} fleet sweep(s)" if n_sweeps else ""
    print(f"[store {target} now holds {n} run(s){sweeps_s}; render with: repro dashboard "
          f"--store {target}]")
    return code


def _cmd_status(path: str) -> int:
    """Live progress of a run streaming telemetry to ``path``."""
    import pathlib
    import time

    from repro.obs import PROGRESS_FILENAME, progress_snapshot, read_progress

    root = pathlib.Path(path)
    progress_path = root if root.is_file() else root / PROGRESS_FILENAME
    if not progress_path.exists():
        print(f"error: no {PROGRESS_FILENAME} under {root} — is a run writing "
              "telemetry there?")
        return 1
    snap = progress_snapshot(read_progress(progress_path))
    state = "finished" if snap["finished"] else ("running" if snap["started"] else "unknown")
    age = f", last record {time.time() - snap['last_ts']:.0f}s ago" if snap["last_ts"] else ""
    print(f"{root}: {state} ({snap['n_records']} progress records{age})")
    reps = snap.get("replications")
    if reps:
        total = reps.get("n_total")
        total_s = f"/{total}" if total is not None else ""
        rate = reps.get("last_events_per_sec")
        rate_s = f", {rate:,.0f} events/s" if rate else ""
        print(f"  replications  {reps['n_done']}{total_s} done "
              f"({reps['cache_hits']} cache hits{rate_s})")
    ad = snap.get("adaptive")
    if ad:
        rel = ", ".join(f"{k}={v:.2%}" for k, v in sorted(ad["rel_ci"].items()))
        stop = f", stop at {ad['stop_at']}" if ad.get("stop_at") is not None else ""
        print(f"  adaptive      round {ad['n_rounds']}: {ad['n_available']} "
              f"replications available{stop}; rel CI {rel}")
    for label, rec in (snap.get("sweeps") or {}).items():
        total = rec.get("n_total")
        total_s = f"/{total}" if total is not None else ""
        failed = f", {rec['n_failed']} failed" if rec.get("n_failed") else ""
        print(f"  sweep {label or '(unlabeled)'}  {rec['n_done']}{total_s} points{failed}")
    ep = snap.get("epochs")
    if ep:
        print(f"  controller    {ep['n_fired']} epochs fired (t={ep['last_t']:g})")
    fleet = snap.get("fleet")
    if fleet:
        total = fleet.get("n_total")
        total_s = f"/{total}" if total is not None else ""
        rate = fleet.get("units_per_sec")
        rate_s = f", {rate:,.1f} units/s" if rate else ""
        failed = f", {fleet['n_failed']} failed" if fleet.get("n_failed") else ""
        state = "done" if fleet.get("finished") else "running"
        print(f"  fleet         {fleet['n_done']}{total_s} units ({state}{rate_s}{failed})")
    return 0


def _cmd_dashboard(store_path: str | None, out: str, bench_history: str | None) -> int:
    """Render the run store into one self-contained HTML file."""
    import pathlib

    from repro.obs import STORE_FILENAME, RunStore, render_dashboard

    target = store_path or STORE_FILENAME
    if not pathlib.Path(target).exists():
        print(f"error: no store at {target} — build one with: "
              "repro telemetry ingest DIR [DIR...]")
        return 1
    with RunStore(target) as store:
        n = len(store.runs())
        render_dashboard(store, out, bench_history=bench_history)
    print(f"[dashboard over {n} run(s) written to {out}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    When the command carries ``--telemetry DIR``, the whole dispatch
    runs inside a telemetry session: spans, events and metrics stream
    to ``DIR/events.jsonl`` and a run manifest is finalized atomically
    on the way out — even if the command fails.
    """
    args = build_parser().parse_args(argv)
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is not None:
        from repro.obs import telemetry_session

        command = ["repro", *(argv if argv is not None else sys.argv[1:])]
        with telemetry_session(
            telemetry_dir,
            command=command,
            sample_queues=getattr(args, "telemetry_sample_queues", False),
        ):
            code = _dispatch(args)
        print(f"[telemetry written to {telemetry_dir}; "
              f"read with: repro telemetry summarize {telemetry_dir}]")
        return code
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    """Route parsed arguments to their command implementation."""
    if args.command == "telemetry":
        if args.telemetry_command == "summarize":
            code = 0
            for path in args.paths:
                code = max(code, _cmd_telemetry_summarize(path, args.top))
                print()
            if len(args.paths) > 1 and code == 0:
                code = _telemetry_compare(args.paths)
            return code
        if args.telemetry_command == "ingest":
            return _cmd_telemetry_ingest(args.paths, args.store, args.fleet)
        raise AssertionError(
            f"unhandled telemetry command {args.telemetry_command!r}"
        )  # pragma: no cover
    if args.command == "status":
        return _cmd_status(args.path)
    if args.command == "dashboard":
        return _cmd_dashboard(args.store, args.out, args.bench_history)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiment_id,
            args.quick,
            args.out,
            args.jobs,
            args.cache_dir,
            args.target_rel_ci,
            args.max_reps,
            args.controller,
            args.v_param,
        )
    if args.command == "run-all":
        return _cmd_run_all(
            args.out_dir,
            args.full,
            args.jobs,
            args.cache_dir,
            args.target_rel_ci,
            args.max_reps,
        )
    if args.command == "simulate":
        return _cmd_simulate(
            args.load_factor,
            args.horizon,
            args.replications,
            args.seed,
            args.warmup_fraction,
            args.jobs,
            args.cache_dir,
            args.target_rel_ci,
            args.max_reps,
        )
    if args.command == "report":
        return _cmd_report(args.load_factor)
    if args.command == "diagnose":
        from repro.analysis.diagnostics import diagnose
        from repro.experiments.common import canonical_cluster, canonical_workload

        findings = diagnose(canonical_cluster(), canonical_workload(args.load_factor))
        if not findings:
            print("no findings — configuration looks healthy")
        for f in findings:
            print(f"[{f.severity.value}] {f.code}: {f.message}")
        return 0
    if args.command == "summary":
        from repro.analysis.summary import build_summary

        text = build_summary(args.results_dir)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"[written to {args.out}]")
        else:
            print(text)
        return 0
    if args.command == "fleet":
        return _cmd_fleet(
            args.load_factors,
            args.replications,
            args.horizon,
            args.warmup_fraction,
            args.seed,
            args.out,
            args.backend,
            args.format,
            args.jobs,
            args.batch_size,
        )
    if args.command == "solve":
        return _cmd_solve(args.problem, args.load_factor, args.budget_fraction, args.delay_slack)
    if args.command == "bench":
        from repro.analysis.perf_bench import main_bench

        return main_bench(
            args.out,
            args.repeats,
            args.check,
            args.tolerance,
            args.gate,
            record=args.record,
            history=args.history,
            history_tolerance=args.history_tolerance,
            history_window=args.history_window,
        )
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
