"""Setup shim.

The offline build environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (which shell out to
``bdist_wheel``) fail. Keeping a ``setup.py`` lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which needs no wheel. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
